(* Observability stack: Prometheus exposition edge cases, time-series
   ring queries on both clocks, the from-scratch TCP listener end to end
   (the CI endpoint smoke test — no curl), and dashboard rendering. *)

module Tel = Alpenhorn_telemetry.Telemetry
module Expose = Alpenhorn_telemetry.Expose
module Timeseries = Alpenhorn_telemetry.Timeseries
module Slo = Alpenhorn_telemetry.Slo
module Dashboard = Alpenhorn_telemetry.Dashboard
module Listener = Alpenhorn_net.Listener

let fresh () = Tel.create ()

(* A registry with one of each metric kind, including hostile label
   values and names needing sanitization. *)
let populated () =
  let r = fresh () in
  let c = Tel.Counter.v r ~labels:[ ("phase", "add\"friend\\x\n") ] "round.completed" in
  Tel.Counter.add c 7;
  Tel.Gauge.set (Tel.Gauge.v r "heap-words") 1.5e6;
  Tel.Gauge.set (Tel.Gauge.v r "util.nan") Float.nan;
  Tel.Gauge.set (Tel.Gauge.v r "util.inf") Float.infinity;
  let h = Tel.Histogram.v r "mix.unwrap_seconds" in
  List.iter (Tel.Histogram.observe h) [ 0.001; 0.004; 0.004; 0.5 ];
  r

(* Parse `name{labels} value` exposition lines into an assoc list,
   skipping comments. *)
let prom_lines body =
  String.split_on_char '\n' body
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.rindex_opt l ' ' with
         | Some i ->
           (String.sub l 0 i, float_of_string (String.sub l (i + 1) (String.length l - i - 1)))
         | None -> Alcotest.failf "unparseable exposition line: %s" l)

let exposition_tests =
  [
    Alcotest.test_case "name sanitization" `Quick (fun () ->
        Alcotest.(check string) "dots to underscores" "mix_onions_in"
          (Expose.sanitize_name "mix.onions_in");
        Alcotest.(check string) "dashes to underscores" "heap_words"
          (Expose.sanitize_name "heap-words");
        Alcotest.(check string) "colon survives" "a:b" (Expose.sanitize_name "a:b");
        Alcotest.(check string) "leading digit prefixed" "_9lives"
          (Expose.sanitize_name "9lives"));
    Alcotest.test_case "label value escaping" `Quick (fun () ->
        Alcotest.(check string) "backslash quote newline" "a\\\\b\\\"c\\nd"
          (Expose.escape_label_value "a\\b\"c\nd");
        Alcotest.(check string) "clean value untouched" "dialing"
          (Expose.escape_label_value "dialing"));
    Alcotest.test_case "metrics_text: escapes, buckets cumulative, non-finite" `Quick
      (fun () ->
        let body = Expose.metrics_text (Tel.Snapshot.take (populated ())) in
        Alcotest.(check bool) "TYPE comments present" true
          (let rec has_sub i =
             i + 6 <= String.length body
             && (String.sub body i 6 = "# TYPE" || has_sub (i + 1))
           in
           has_sub 0);
        let series = prom_lines body in
        Alcotest.(check (float 0.0)) "counter with escaped label" 7.0
          (List.assoc "round_completed{phase=\"add\\\"friend\\\\x\\n\"}" series);
        Alcotest.(check (float 0.0)) "sanitized gauge" 1.5e6 (List.assoc "heap_words" series);
        Alcotest.(check bool) "NaN gauge spelled NaN" true
          (Float.is_nan (List.assoc "util_nan" series));
        Alcotest.(check (float 0.0)) "Inf gauge" Float.infinity (List.assoc "util_inf" series);
        (* histogram: _count/_sum plus cumulative le buckets ending at +Inf *)
        Alcotest.(check (float 0.0)) "hist count" 4.0
          (List.assoc "mix_unwrap_seconds_count" series);
        Alcotest.(check (float 1e-9)) "hist sum" 0.509 (List.assoc "mix_unwrap_seconds_sum" series);
        let buckets =
          List.filter_map
            (fun (k, v) ->
              let pre = "mix_unwrap_seconds_bucket{le=\"" in
              let lp = String.length pre in
              if String.length k > lp && String.sub k 0 lp = pre then Some v else None)
            series
        in
        Alcotest.(check bool) "at least two buckets" true (List.length buckets >= 2);
        let rec monotone = function
          | a :: (b :: _ as rest) -> a <= b && monotone rest
          | _ -> true
        in
        Alcotest.(check bool) "le buckets are cumulative (monotone)" true (monotone buckets);
        Alcotest.(check (float 0.0)) "last bucket is +Inf with total count" 4.0
          (List.assoc "mix_unwrap_seconds_bucket{le=\"+Inf\"}" series));
    Alcotest.test_case "handle: routing, /metrics.json validity, /slo status" `Quick
      (fun () ->
        let r = populated () in
        let cfg = Expose.config ~registry:r () in
        let get path ?(query = []) () = Expose.handle cfg ~meth:"GET" ~path ~query () in
        Alcotest.(check int) "unknown path 404" 404 (get "/nope" ()).Expose.status;
        Alcotest.(check int) "POST 405"
          405
          (Expose.handle cfg ~meth:"POST" ~path:"/metrics" ~query:[] ()).Expose.status;
        Alcotest.(check int) "/series without ring 404" 404 (get "/series" ()).Expose.status;
        let mj = get "/metrics.json" () in
        Alcotest.(check int) "/metrics.json 200" 200 mj.Expose.status;
        Alcotest.(check bool) "/metrics.json is valid JSON" true (Tel.Json.is_valid mj.Expose.body);
        (* healthy rules -> 200; a failing rule -> 503, body valid either way *)
        let ok = Expose.config ~registry:r ~slo_rules:(Slo.default_rules ()) () in
        let resp = Expose.handle ok ~meth:"GET" ~path:"/slo" ~query:[] () in
        Alcotest.(check int) "healthy /slo 200" 200 resp.Expose.status;
        Alcotest.(check bool) "healthy body valid JSON" true (Tel.Json.is_valid resp.Expose.body);
        let failing =
          [ Slo.rule ~name:"impossible" ~description:"" (Slo.Gauge "heap-words") Slo.Le 1.0 ]
        in
        let bad = Expose.config ~registry:r ~slo_rules:failing () in
        let resp = Expose.handle bad ~meth:"GET" ~path:"/slo" ~query:[] () in
        Alcotest.(check int) "unhealthy /slo 503" 503 resp.Expose.status;
        Alcotest.(check bool) "unhealthy body valid JSON" true (Tel.Json.is_valid resp.Expose.body));
  ]

(* Drive a registry on a manual sim clock and record samples at chosen
   instants. *)
let sim_registry () =
  let r = fresh () in
  let now = ref 0.0 in
  Tel.set_clock r ~kind:"sim" (fun () -> !now);
  (r, now)

let timeseries_tests =
  [
    Alcotest.test_case "rate, quantile and points over a window" `Quick (fun () ->
        let r, now = sim_registry () in
        let ring = Timeseries.create ~capacity:16 r in
        let c = Tel.Counter.v r "rounds" in
        let h = Tel.Histogram.v r "lat" in
        for i = 1 to 5 do
          now := float_of_int i;
          Tel.Counter.add c 10;
          Tel.Histogram.observe h 0.01;
          Timeseries.record ring
        done;
        Alcotest.(check int) "five samples" 5 (Timeseries.length ring);
        Alcotest.(check (float 1e-9)) "span" 4.0 (Timeseries.span_seconds ring);
        Alcotest.(check (float 1e-6)) "counter rate 10/s" 10.0 (Timeseries.rate ring "rounds");
        Alcotest.(check int) "one point per consecutive pair" 4
          (List.length (Timeseries.points ring "rounds"));
        let q = Timeseries.quantile ring "lat" 0.5 in
        Alcotest.(check bool) "p50 in the observed bucket" true (q > 0.0 && q < 0.1);
        Alcotest.(check bool) "absent key rates 0" true (Timeseries.rate ring "ghost" = 0.0));
    Alcotest.test_case "reset-tolerant: counter reset does not go negative" `Quick (fun () ->
        let r, now = sim_registry () in
        let ring = Timeseries.create ~capacity:8 r in
        let c = Tel.Counter.v r "n" in
        now := 1.0;
        Tel.Counter.add c 100;
        Timeseries.record ring;
        ignore (Tel.Snapshot.take ~reset:true r);
        now := 2.0;
        Tel.Counter.add c 5;
        Timeseries.record ring;
        (* cumulative dropped 100 -> 5; the clamp discards the discontinuity *)
        Alcotest.(check bool) "rate clamped at zero" true (Timeseries.rate ring "n" >= 0.0));
    Alcotest.test_case "clock restart clears the ring (new epoch)" `Quick (fun () ->
        let r, now = sim_registry () in
        let ring = Timeseries.create ~capacity:8 r in
        now := 50.0;
        Timeseries.record ring;
        now := 60.0;
        Timeseries.record ring;
        Alcotest.(check int) "two samples" 2 (Timeseries.length ring);
        (* a DES restart rewinds the registry clock *)
        now := 0.5;
        Timeseries.record ring;
        Alcotest.(check int) "ring cleared to the new epoch" 1 (Timeseries.length ring);
        Alcotest.(check (option (float 1e-9))) "newest ts from the new epoch" (Some 0.5)
          (Timeseries.last_ts ring));
    Alcotest.test_case "to_jsonl/of_jsonl round-trip preserves queries" `Quick (fun () ->
        let r, now = sim_registry () in
        let ring = Timeseries.create ~capacity:8 r in
        let c = Tel.Counter.v r ~labels:[ ("phase", "dialing") ] "rounds" in
        let g = Tel.Gauge.v r "depth" in
        for i = 1 to 4 do
          now := float_of_int i *. 0.25;
          Tel.Counter.add c 3;
          Tel.Gauge.set g (float_of_int i);
          Timeseries.record ring
        done;
        let dump = Timeseries.to_jsonl ring in
        String.split_on_char '\n' (String.trim dump)
        |> List.iter (fun l ->
               Alcotest.(check bool) "each line valid JSON" true (Tel.Json.is_valid l));
        match Timeseries.of_jsonl dump with
        | Error e -> Alcotest.failf "of_jsonl: %s" e
        | Ok ring' ->
          Alcotest.(check int) "same length" 4 (Timeseries.length ring');
          Alcotest.(check (float 1e-9)) "sub-second timestamps survive (span)"
            (Timeseries.span_seconds ring) (Timeseries.span_seconds ring');
          Alcotest.(check (float 1e-6)) "same rate"
            (Timeseries.rate ring "rounds{phase=dialing}")
            (Timeseries.rate ring' "rounds{phase=dialing}");
          Alcotest.(check (option (pair (pair (float 1e-9) (float 1e-9)) (float 1e-9))))
            "same gauge stats"
            (Option.map (fun (a, b, c) -> ((a, b), c)) (Timeseries.gauge_stats ring "depth"))
            (Option.map (fun (a, b, c) -> ((a, b), c)) (Timeseries.gauge_stats ring' "depth")));
  ]

(* The CI endpoint smoke test: a real listener on an ephemeral port,
   scraped with the in-repo fetch client while metrics move underneath. *)
let listener_tests =
  [
    Alcotest.test_case "serve /metrics and /slo over real TCP" `Quick (fun () ->
        let r = populated () in
        let cfg = Expose.config ~registry:r ~slo_rules:(Slo.default_rules ()) () in
        let handler (req : Listener.request) =
          let resp = Expose.handle cfg ~meth:req.meth ~path:req.path ~query:req.query () in
          {
            Listener.status = resp.Expose.status;
            content_type = resp.Expose.content_type;
            body = resp.Expose.body;
          }
        in
        let t = Listener.create ~port:0 handler in
        let port = Listener.port t in
        Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
        let d = Domain.spawn (fun () -> Listener.run t) in
        Fun.protect
          ~finally:(fun () ->
            Listener.stop t;
            Domain.join d)
          (fun () ->
            (match Listener.fetch ~port "/metrics" with
            | Error e -> Alcotest.failf "/metrics fetch: %s" e
            | Ok (status, body) ->
              Alcotest.(check int) "/metrics 200" 200 status;
              (* counter moved between scrapes shows up in the next one *)
              Alcotest.(check bool) "exposition body non-empty" true
                (List.length (prom_lines body) > 0));
            Tel.Counter.add (Tel.Counter.v r "scrape.extra") 42;
            (match Listener.fetch ~port "/metrics" with
            | Error e -> Alcotest.failf "second fetch: %s" e
            | Ok (_, body) ->
              Alcotest.(check (float 0.0)) "live update visible" 42.0
                (List.assoc "scrape_extra" (prom_lines body)));
            (match Listener.fetch ~port "/metrics.json" with
            | Error e -> Alcotest.failf "/metrics.json fetch: %s" e
            | Ok (status, body) ->
              Alcotest.(check int) "json 200" 200 status;
              Alcotest.(check bool) "parseable" true (Tel.Json.is_valid body));
            (match Listener.fetch ~port "/slo" with
            | Error e -> Alcotest.failf "/slo fetch: %s" e
            | Ok (status, body) ->
              Alcotest.(check int) "healthy 200" 200 status;
              Alcotest.(check bool) "report is JSON" true (Tel.Json.is_valid body));
            match Listener.fetch ~port "/definitely-not-here" with
            | Error e -> Alcotest.failf "404 fetch: %s" e
            | Ok (status, _) -> Alcotest.(check int) "unknown path 404" 404 status));
    Alcotest.test_case "oversized request head answered with 431" `Quick (fun () ->
        let t =
          Listener.create ~max_request_bytes:256 ~port:0 (fun _ ->
              { Listener.status = 200; content_type = "text/plain"; body = "ok" })
        in
        let port = Listener.port t in
        let d = Domain.spawn (fun () -> Listener.run t) in
        Fun.protect
          ~finally:(fun () ->
            Listener.stop t;
            Domain.join d)
          (fun () ->
            let long = "/" ^ String.make 1024 'x' in
            match Listener.fetch ~port long with
            | Error e -> Alcotest.failf "oversized fetch: %s" e
            | Ok (status, _) -> Alcotest.(check int) "431" 431 status));
    Alcotest.test_case "stop drains and frees the port" `Quick (fun () ->
        let t =
          Listener.create ~port:0 (fun _ ->
              { Listener.status = 200; content_type = "text/plain"; body = "ok" })
        in
        let port = Listener.port t in
        let d = Domain.spawn (fun () -> Listener.run t) in
        (match Listener.fetch ~port "/" with
        | Error e -> Alcotest.failf "pre-stop fetch: %s" e
        | Ok (status, body) ->
          Alcotest.(check int) "200" 200 status;
          Alcotest.(check string) "body" "ok" body);
        Listener.stop t;
        Domain.join d;
        (* re-binding the same port proves the descriptors were released *)
        let t2 =
          Listener.create ~port (fun _ ->
              { Listener.status = 200; content_type = "text/plain"; body = "again" })
        in
        Listener.close t2;
        Alcotest.(check bool) "stop is idempotent" true
          (Listener.stop t;
           true));
    Alcotest.test_case "url_decode" `Quick (fun () ->
        Alcotest.(check string) "percent and plus" "a b/c"
          (Listener.url_decode "a+b%2Fc");
        Alcotest.(check string) "invalid escape passes through" "100%zz"
          (Listener.url_decode "100%zz"));
  ]

let dashboard_tests =
  [
    Alcotest.test_case "sparkline shapes" `Quick (fun () ->
        Alcotest.(check string) "empty" "" (Dashboard.sparkline []);
        let up = Dashboard.sparkline [ 0.0; 1.0; 2.0; 3.0 ] in
        Alcotest.(check int) "one glyph (3 bytes) per point" 12 (String.length up);
        Alcotest.(check bool) "ends at full block" true
          (String.length up >= 3 && String.sub up (String.length up - 3) 3 = "\xe2\x96\x88");
        let flat = Dashboard.sparkline [ 5.0; 5.0 ] in
        Alcotest.(check string) "constant series renders mid-height"
          "\xe2\x96\x84\xe2\x96\x84" flat);
    Alcotest.test_case "render a frame on the DES clock, no color" `Quick (fun () ->
        let r, now = sim_registry () in
        let ring = Timeseries.create ~capacity:16 r in
        let c = Tel.Counter.v r ~labels:[ ("phase", "dialing") ] "round.completed" in
        Tel.Gauge.set (Tel.Gauge.v r "runtime.heap_words") 2e6;
        for i = 1 to 6 do
          now := float_of_int i;
          Tel.Counter.inc c;
          Timeseries.record ring
        done;
        let slo = Some (Slo.evaluate (Slo.default_rules ()) (Tel.Snapshot.take r)) in
        let frame = Dashboard.render ~width:80 ~color:false ~ring ~slo () in
        Alcotest.(check bool) "mentions rounds" true
          (let rec has i =
             i + 6 <= String.length frame && (String.sub frame i 6 = "rounds" || has (i + 1))
           in
           has 0);
        Alcotest.(check bool) "no escape sequences without color" true
          (not (String.contains frame '\x1b'));
        String.split_on_char '\n' frame
        |> List.iter (fun l ->
               Alcotest.(check bool) "width respected" true (String.length l <= 80)));
  ]

let suite = exposition_tests @ timeseries_tests @ listener_tests @ dashboard_tests
