(* Bloom filter: no false negatives, bounded false positives, wire format. *)

module Bloom = Alpenhorn_bloom.Bloom
module Drbg = Alpenhorn_crypto.Drbg

let unit_tests =
  [
    Alcotest.test_case "paper operating point" `Quick (fun () ->
        Alcotest.(check int) "48 bits/element" 48 Bloom.bits_per_element;
        Alcotest.(check (float 1e-12)) "fp target" 1e-10 Bloom.target_fp_rate;
        let f = Bloom.create ~expected_elements:1000 in
        Alcotest.(check int) "sized" (48 * 1000) (Bloom.size_bits f);
        Alcotest.(check int) "hashes" 33 (Bloom.num_hashes f));
    Alcotest.test_case "membership basics" `Quick (fun () ->
        let f = Bloom.create ~expected_elements:10 in
        Alcotest.(check bool) "empty" false (Bloom.mem f "token");
        Bloom.add f "token";
        Alcotest.(check bool) "added" true (Bloom.mem f "token");
        Alcotest.(check int) "count" 1 (Bloom.count f));
    Alcotest.test_case "no false negatives over 5000 tokens" `Quick (fun () ->
        let rng = Drbg.create ~seed:"bloom-neg" in
        let f = Bloom.create ~expected_elements:5000 in
        let tokens = List.init 5000 (fun _ -> Drbg.bytes rng 32) in
        List.iter (Bloom.add f) tokens;
        List.iter (fun t -> Alcotest.(check bool) "present" true (Bloom.mem f t)) tokens);
    Alcotest.test_case "false positive rate is tiny at design load" `Quick (fun () ->
        let rng = Drbg.create ~seed:"bloom-fp" in
        let f = Bloom.create ~expected_elements:2000 in
        for _ = 1 to 2000 do
          Bloom.add f (Drbg.bytes rng 32)
        done;
        (* with target 1e-10, 20k probes should hit zero false positives *)
        let fps = ref 0 in
        for _ = 1 to 20_000 do
          if Bloom.mem f (Drbg.bytes rng 32) then incr fps
        done;
        Alcotest.(check int) "no false positives observed" 0 !fps;
        Alcotest.(check bool) "estimate below target" true
          (Bloom.false_positive_estimate f < 1e-8));
    Alcotest.test_case "serialization roundtrip preserves membership" `Quick (fun () ->
        let rng = Drbg.create ~seed:"bloom-ser" in
        let f = Bloom.create ~expected_elements:100 in
        let tokens = List.init 100 (fun _ -> Drbg.bytes rng 32) in
        List.iter (Bloom.add f) tokens;
        match Bloom.of_bytes (Bloom.to_bytes f) with
        | None -> Alcotest.fail "decode failed"
        | Some g ->
          Alcotest.(check int) "bits" (Bloom.size_bits f) (Bloom.size_bits g);
          Alcotest.(check int) "count" (Bloom.count f) (Bloom.count g);
          List.iter (fun t -> Alcotest.(check bool) "member" true (Bloom.mem g t)) tokens);
    Alcotest.test_case "of_bytes rejects garbage" `Quick (fun () ->
        Alcotest.(check bool) "empty" true (Bloom.of_bytes "" = None);
        Alcotest.(check bool) "short" true (Bloom.of_bytes "abc" = None);
        Alcotest.(check bool) "truncated" true
          (let f = Bloom.create ~expected_elements:10 in
           let b = Bloom.to_bytes f in
           Bloom.of_bytes (String.sub b 0 (String.length b - 1)) = None));
    Alcotest.test_case "custom geometry" `Quick (fun () ->
        let f = Bloom.create_custom ~bits:256 ~hashes:4 in
        Bloom.add f "x";
        Alcotest.(check bool) "works" true (Bloom.mem f "x");
        Alcotest.(check int) "bits" 256 (Bloom.size_bits f);
        Alcotest.check_raises "invalid" (Invalid_argument "Bloom.create_custom") (fun () ->
            ignore (Bloom.create_custom ~bits:0 ~hashes:1)));
    Alcotest.test_case "wire size matches the 48-bit/token accounting" `Quick (fun () ->
        (* §5.2: the whole point is 48 bits/token vs 256-bit raw tokens *)
        let n = 1000 in
        let f = Bloom.create ~expected_elements:n in
        let bytes = String.length (Bloom.to_bytes f) in
        Alcotest.(check bool) "6 bytes/token + header" true (bytes <= (n * 6) + 16);
        Alcotest.(check bool) "well under raw 32 bytes/token" true (bytes * 5 < n * 32));
  ]

let prop name ?(count = 30) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "anything added is found" QCheck.(small_list small_string) (fun items ->
        let f = Bloom.create ~expected_elements:(Stdlib.max 1 (List.length items)) in
        List.iter (Bloom.add f) items;
        List.for_all (Bloom.mem f) items);
    prop "roundtrip through bytes" QCheck.(small_list small_string) (fun items ->
        let f = Bloom.create ~expected_elements:(Stdlib.max 1 (List.length items)) in
        List.iter (Bloom.add f) items;
        match Bloom.of_bytes (Bloom.to_bytes f) with
        | None -> false
        | Some g -> List.for_all (Bloom.mem g) items);
  ]

let suite = unit_tests @ property_tests
