(* Chaos suite (DESIGN.md §10): deterministic fault schedules, anytrust
   abort/retry with rollback, rate-limit token un-spending, and keywheel
   offline catch-up — every failure either recovers or aborts cleanly,
   and a faulted-then-recovered run delivers what a fault-free one
   does. *)

module Params = Alpenhorn_pairing.Params
module Blind = Alpenhorn_bls.Blind
module Ratelimit = Alpenhorn_mixnet.Ratelimit
module Keywheel = Alpenhorn_keywheel.Keywheel
module Entry = Alpenhorn_core.Entry
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Costmodel = Alpenhorn_sim.Costmodel
module Round_sim = Alpenhorn_sim.Round_sim
module Faults = Alpenhorn_sim.Faults
module Drbg = Alpenhorn_crypto.Drbg
module Tel = Alpenhorn_telemetry.Telemetry
module Events = Alpenhorn_telemetry.Events

let params = lazy (Params.test ())
let p () = Lazy.force params

let no_faults =
  {
    Deployment.fv_seed = "none";
    fv_crash_attempts = (fun ~round:_ ~server:_ -> 0);
    fv_stall_seconds = (fun ~round:_ ~server:_ -> 0.0);
    fv_client_offline = (fun ~round:_ ~client:_ -> false);
  }

(* ---- schedule unit tests ---- *)

let schedule_tests =
  [
    Alcotest.test_case "spec grammar round-trips" `Quick (fun () ->
        let spec =
          "crash@2:server=1,attempts=2;stall@3:server=0,seconds=45;latency@1:server=2,factor=3;loss@1:server=0,fraction=0.2;offline@4:client=7,rounds=2"
        in
        let t = match Faults.parse spec with Ok t -> t | Error e -> Alcotest.fail e in
        let reparsed =
          match Faults.parse (Faults.to_string t) with Ok t -> t | Error e -> Alcotest.fail e
        in
        Alcotest.(check bool) "canonical fixpoint" true
          (Faults.to_list t = Faults.to_list reparsed);
        Alcotest.(check string) "canonical string stable" (Faults.to_string t)
          (Faults.to_string reparsed));
    Alcotest.test_case "parse rejects malformed specs" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Faults.parse spec with
            | Ok _ -> Alcotest.failf "accepted %S" spec
            | Error _ -> ())
          [ "crash"; "frob@1:server=0"; "crash@zero:server=0"; "crash@1:server=-1" ]);
    Alcotest.test_case "generate is deterministic in the seed" `Quick (fun () ->
        let g () = Faults.generate ~seed:"gen-1" ~rounds:5 ~n_servers:3 ~n_clients:10 () in
        Alcotest.(check string) "same seed, same schedule" (Faults.to_string (g ()))
          (Faults.to_string (g ()));
        let other = Faults.generate ~seed:"gen-2" ~rounds:5 ~n_servers:3 ~n_clients:10 () in
        Alcotest.(check bool) "different seed, different schedule" false
          (Faults.to_string (g ()) = Faults.to_string other));
    Alcotest.test_case "queries combine multiple faults" `Quick (fun () ->
        let t =
          Faults.of_list
            [
              { Faults.round = 1; kind = Faults.Server_crash { server = 0; attempts = 2 } };
              { Faults.round = 1; kind = Faults.Server_crash { server = 0; attempts = 1 } };
              { Faults.round = 1; kind = Faults.Server_stall { server = 0; seconds = 10.0 } };
              { Faults.round = 1; kind = Faults.Server_stall { server = 0; seconds = 5.0 } };
              { Faults.round = 1; kind = Faults.Link_latency { server = 1; factor = 2.0 } };
              { Faults.round = 1; kind = Faults.Link_latency { server = 1; factor = 3.0 } };
              { Faults.round = 1; kind = Faults.Link_loss { server = 1; fraction = 0.5 } };
              { Faults.round = 1; kind = Faults.Link_loss { server = 1; fraction = 0.5 } };
              { Faults.round = 2; kind = Faults.Client_offline { client = 4; rounds = 3 } };
            ]
        in
        Alcotest.(check int) "crash attempts take the max" 2
          (Faults.crash_attempts t ~round:1 ~server:0);
        Alcotest.(check (float 1e-9)) "stalls add" 15.0 (Faults.stall_seconds t ~round:1 ~server:0);
        Alcotest.(check (float 1e-9)) "latency factors multiply" 6.0
          (Faults.latency_factor t ~round:1 ~server:1);
        Alcotest.(check (float 1e-9)) "loss survival rates multiply" 0.75
          (Faults.loss_fraction t ~round:1 ~server:1);
        Alcotest.(check int) "unaffected server" 0 (Faults.crash_attempts t ~round:1 ~server:2);
        List.iter
          (fun (round, expect) ->
            Alcotest.(check bool)
              (Printf.sprintf "offline round %d" round)
              expect
              (Faults.client_offline t ~round ~client:4))
          [ (1, false); (2, true); (3, true); (4, true); (5, false) ];
        Alcotest.(check bool) "other client online" false
          (Faults.client_offline t ~round:2 ~client:5));
    Alcotest.test_case "backoff is deterministic, jittered and capped" `Quick (fun () ->
        let policy = Faults.default_policy in
        let d1 = Faults.backoff_delay policy ~seed:"s" ~attempt:1 in
        Alcotest.(check (float 1e-12)) "same (seed, attempt), same delay" d1
          (Faults.backoff_delay policy ~seed:"s" ~attempt:1);
        Alcotest.(check bool) "different attempt, different delay" false
          (d1 = Faults.backoff_delay policy ~seed:"s" ~attempt:2);
        for attempt = 1 to 8 do
          let raw =
            Float.min policy.Faults.max_delay
              (policy.Faults.base_delay
              *. (policy.Faults.backoff_factor ** float_of_int (attempt - 1)))
          in
          let d = Faults.backoff_delay policy ~seed:"bounds" ~attempt in
          Alcotest.(check bool)
            (Printf.sprintf "attempt %d within jitter band" attempt)
            true
            (d >= raw *. (1.0 -. policy.Faults.jitter) -. 1e-9
            && d <= raw *. (1.0 +. policy.Faults.jitter) +. 1e-9)
        done;
        Alcotest.check_raises "attempt 0 rejected"
          (Invalid_argument "Client.backoff_delay: attempt must be >= 1") (fun () ->
            ignore (Faults.backoff_delay policy ~seed:"s" ~attempt:0)));
  ]

(* ---- simulator chaos corpus ---- *)

let corpus_seeds = [ "chaos-1"; "chaos-2"; "chaos-3"; "chaos-4"; "chaos-5" ]

let replay ?events ~faults () =
  let m = Costmodel.paper_machine in
  let pc = Costmodel.protocol_costs (p ()) in
  let af =
    Round_sim.addfriend m ?events ~faults pc ~n_users:5_000 ~n_servers:3 ~noise_mu:1000.0
      ~active_fraction:0.05 ~chunks:2
  in
  let dial =
    Round_sim.dialing m ?events ~faults pc ~n_users:5_000 ~n_servers:3 ~noise_mu:2000.0
      ~active_fraction:0.05 ~friends:50 ~intents:4 ~chunks:2
  in
  (af, dial)

let sim_tests =
  [
    Alcotest.test_case "chaos corpus: every replay recovers or aborts cleanly" `Quick (fun () ->
        let policy = Faults.default_policy in
        List.iter
          (fun seed ->
            let faults = Faults.generate ~seed ~rounds:1 ~n_servers:3 () in
            let af, dial = replay ~faults () in
            List.iter
              (fun (phase, (tl : Round_sim.timeline)) ->
                let name s = Printf.sprintf "%s/%s %s" seed phase s in
                Alcotest.(check bool)
                  (name "attempts within budget")
                  true
                  (tl.Round_sim.attempts >= 1
                  && tl.Round_sim.attempts <= policy.Faults.max_attempts);
                if tl.Round_sim.completed then
                  Alcotest.(check bool) (name "completed run published") true
                    (tl.Round_sim.publish > 0.0
                    && tl.Round_sim.client_done >= tl.Round_sim.publish)
                else begin
                  (* clean abort: budget exhausted, nothing published *)
                  Alcotest.(check int)
                    (name "failed run used every attempt")
                    policy.Faults.max_attempts tl.Round_sim.attempts;
                  Alcotest.(check (float 0.0)) (name "failed run published nothing") 0.0
                    tl.Round_sim.publish
                end)
              [ ("addfriend", af); ("dialing", dial) ])
          corpus_seeds);
    Alcotest.test_case "same fault seed, byte-identical event log" `Quick (fun () ->
        let run () =
          let ring = Events.create ~capacity:1024 Tel.default in
          let faults = Faults.generate ~seed:"chaos-identical" ~rounds:1 ~n_servers:3 () in
          ignore (replay ~events:ring ~faults ());
          Events.to_jsonl ring
        in
        let log1 = run () and log2 = run () in
        Alcotest.(check bool) "log non-trivial" true (String.length log1 > 0);
        Alcotest.(check string) "byte-identical" log1 log2);
    Alcotest.test_case "crash delays publish by backoff plus re-run" `Quick (fun () ->
        let clean_af, _ = replay ~faults:Faults.empty () in
        let faults =
          Faults.of_list [ { Faults.round = 1; kind = Server_crash { server = 1; attempts = 1 } } ]
        in
        let af, _ = replay ~faults () in
        Alcotest.(check int) "clean run is one attempt" 1 clean_af.Round_sim.attempts;
        Alcotest.(check int) "crashed run recovers on the second" 2 af.Round_sim.attempts;
        Alcotest.(check bool) "recovered" true af.Round_sim.completed;
        Alcotest.(check bool) "publish pushed past the clean run" true
          (af.Round_sim.publish > clean_af.Round_sim.publish));
    Alcotest.test_case "stall past the round timeout aborts, short stall does not" `Quick
      (fun () ->
        let stall seconds =
          Faults.of_list [ { Faults.round = 1; kind = Server_stall { server = 0; seconds } } ]
        in
        let policy = Faults.default_policy in
        let timed_out, _ = replay ~faults:(stall (policy.Faults.round_timeout +. 100.0)) () in
        Alcotest.(check int) "timeout costs the first attempt" 2 timed_out.Round_sim.attempts;
        Alcotest.(check bool) "still recovers" true timed_out.Round_sim.completed;
        let slow, _ = replay ~faults:(stall 30.0) () in
        Alcotest.(check int) "short stall completes in one" 1 slow.Round_sim.attempts);
    Alcotest.test_case "link latency slows the faulted run" `Quick (fun () ->
        let clean_af, _ = replay ~faults:Faults.empty () in
        let faults =
          Faults.of_list [ { Faults.round = 1; kind = Link_latency { server = 0; factor = 4.0 } } ]
        in
        let af, _ = replay ~faults () in
        Alcotest.(check int) "latency alone never aborts" 1 af.Round_sim.attempts;
        Alcotest.(check bool) "publish later than clean" true
          (af.Round_sim.publish > clean_af.Round_sim.publish));
    Alcotest.test_case "empty schedule matches the fault-free replay exactly" `Quick (fun () ->
        let ring1 = Events.create ~capacity:1024 Tel.default in
        let ring2 = Events.create ~capacity:1024 Tel.default in
        let af1, dial1 = replay ~events:ring1 ~faults:Faults.empty () in
        let m = Costmodel.paper_machine in
        let pc = Costmodel.protocol_costs (p ()) in
        let af2 =
          Round_sim.addfriend m ~events:ring2 pc ~n_users:5_000 ~n_servers:3 ~noise_mu:1000.0
            ~active_fraction:0.05 ~chunks:2
        in
        let dial2 =
          Round_sim.dialing m ~events:ring2 pc ~n_users:5_000 ~n_servers:3 ~noise_mu:2000.0
            ~active_fraction:0.05 ~friends:50 ~intents:4 ~chunks:2
        in
        Alcotest.(check bool) "timelines equal" true (af1 = af2 && dial1 = dial2);
        Alcotest.(check string) "event logs equal" (Events.to_jsonl ring1) (Events.to_jsonl ring2));
  ]

(* ---- real-deployment recovery ---- *)

let new_pair d =
  let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
  let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
  List.iter
    (fun c -> match Deployment.register d c with Ok () -> () | Error _ -> assert false)
    [ alice; bob ];
  (alice, bob)

let deployment_tests =
  [
    Alcotest.test_case "crashed server: clean abort, retry, same deliveries as twin" `Quick
      (fun () ->
        let run faulted =
          let d = Deployment.create ~config:Config.test ~seed:"chaos-dep" in
          let alice, bob = new_pair d in
          if faulted then begin
            let faults =
              Faults.of_list
                [ { Faults.round = 1; kind = Server_crash { server = 1; attempts = 1 } } ]
            in
            Deployment.set_faults d (Some (Faults.deployment_view faults))
          end;
          Client.add_friend alice ~email:"bob@x" ();
          let s1 = Deployment.run_addfriend_round d () in
          let s2 = Deployment.run_addfriend_round d () in
          (s1, s2, Client.is_friend alice ~email:"bob@x", Client.is_friend bob ~email:"alice@x")
        in
        let f1, f2, fa, fb = run true in
        let c1, c2, ca, cb = run false in
        Alcotest.(check int) "faulted round recovered on attempt 2" 2 f1.Deployment.af_attempts;
        Alcotest.(check int) "clean second round" 1 f2.Deployment.af_attempts;
        Alcotest.(check int) "twin never retried" 1 c1.Deployment.af_attempts;
        Alcotest.(check bool) "both friendships hold" true (fa && fb && ca && cb);
        (* recovery must not change what got delivered: same (client, event)
           pairs as the fault-free twin, both rounds *)
        Alcotest.(check bool) "round-1 events match twin" true
          (List.sort compare f1.Deployment.events = List.sort compare c1.Deployment.events);
        Alcotest.(check bool) "round-2 events match twin" true
          (List.sort compare f2.Deployment.events = List.sort compare c2.Deployment.events));
    Alcotest.test_case "exhausted retry budget raises Round_failed, deployment stays usable"
      `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"chaos-fail" in
        let alice, bob = new_pair d in
        Deployment.set_retry_policy d
          { Client.default_retry_policy with Client.max_attempts = 2 };
        let faults =
          Faults.of_list [ { Faults.round = 1; kind = Server_crash { server = 0; attempts = 99 } } ]
        in
        Deployment.set_faults d (Some (Faults.deployment_view faults));
        Client.add_friend alice ~email:"bob@x" ();
        (match Deployment.run_addfriend_round d () with
        | _ -> Alcotest.fail "round should have failed"
        | exception Deployment.Round_failed { phase; round; attempts } ->
          Alcotest.(check string) "phase" "addfriend" phase;
          Alcotest.(check int) "round" 1 round;
          Alcotest.(check int) "attempts" 2 attempts);
        (* nothing published, client state rolled back: the queued request
           survives and the next (clean) rounds deliver it *)
        Alcotest.(check int) "request still queued" 1 (Client.pending_add_friends alice);
        Deployment.set_faults d None;
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        Alcotest.(check bool) "friendship established after recovery" true
          (Client.is_friend bob ~email:"alice@x" && Client.is_friend alice ~email:"bob@x"));
    Alcotest.test_case "stall within timeout recovers nothing; past it burns an attempt" `Quick
      (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"chaos-stall" in
        let alice, _bob = new_pair d in
        let policy = Deployment.retry_policy d in
        Deployment.set_faults d
          (Some
             {
               no_faults with
               Deployment.fv_stall_seconds =
                 (fun ~round ~server ->
                   if round = 1 && server = 0 then policy.Client.round_timeout +. 50.0 else 0.0);
             });
        Client.add_friend alice ~email:"bob@x" ();
        let before = Deployment.now d in
        let s = Deployment.run_addfriend_round d () in
        Alcotest.(check int) "timeout burned the first attempt" 2 s.Deployment.af_attempts;
        Alcotest.(check bool) "clock advanced past the timeout" true
          (Deployment.now d - before >= int_of_float policy.Client.round_timeout));
    Alcotest.test_case "offline client misses a call, catches up from the archive" `Quick
      (fun () ->
        let got_call = ref None in
        let d = Deployment.create ~config:Config.test ~seed:"chaos-offline" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let bob =
          Deployment.new_client d ~email:"bob@x"
            ~callbacks:
              {
                Client.null_callbacks with
                Client.incoming_call =
                  (fun ~email ~intent ~session_key:_ -> got_call := Some (email, intent));
              }
        in
        List.iter
          (fun c -> match Deployment.register d c with Ok () -> () | Error _ -> assert false)
          [ alice; bob ];
        Client.add_friend alice ~email:"bob@x" ();
        ignore (Deployment.run_addfriend_round d ());
        ignore (Deployment.run_addfriend_round d ());
        (* bob (registration index 1) is offline for dialing round 1 only *)
        Deployment.set_faults d
          (Some
             {
               no_faults with
               Deployment.fv_client_offline =
                 (fun ~round ~client -> round = 1 && client = 1);
             });
        Client.call alice ~email:"bob@x" ~intent:1;
        let s1 = Deployment.run_dialing_round d () in
        Alcotest.(check bool) "offline round delivered nothing to bob" true
          (not (List.exists (fun (email, _) -> email = "bob@x") s1.Deployment.calls));
        Alcotest.(check bool) "bob saw nothing while offline" true (!got_call = None);
        let s2 = Deployment.run_dialing_round d () in
        let bob_events = List.filter (fun (email, _) -> email = "bob@x") s2.Deployment.calls in
        (match bob_events with
        | [ (_, Client.Incoming_call { peer; intent; _ }) ] ->
          Alcotest.(check string) "caller" "alice@x" peer;
          Alcotest.(check int) "intent" 1 intent
        | _ -> Alcotest.fail "expected exactly one recovered call for bob");
        Alcotest.(check bool) "callback fired on catch-up" true
          (!got_call = Some ("alice@x", 1));
        Alcotest.(check int) "keywheel caught up to the deployment clock"
          (Deployment.dialing_round_number d) (Client.dialing_round bob));
  ]

(* ---- rate-limit / entry rollback regression ---- *)

let mint_token pr rng issuer =
  let serial = Ratelimit.fresh_serial rng in
  let blinded, r = Blind.blind pr rng ~msg:serial in
  let signed =
    match Ratelimit.issue issuer ~now:0 ~user:"alice@x" blinded with
    | Ok s -> s
    | Error `Quota_exhausted -> assert false
  in
  { Ratelimit.serial; signature = Blind.unblind pr (Ratelimit.issuer_public issuer) ~signed r }

let rollback_tests =
  [
    Alcotest.test_case "aborted round un-spends admitted tokens (regression)" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"rollback-gate" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:5 in
        let gate = Ratelimit.create_gate pr ~issuer_key:(Ratelimit.issuer_public issuer) in
        let token = mint_token pr rng issuer in
        Ratelimit.begin_round gate;
        Alcotest.(check bool) "admitted" true (Ratelimit.admit gate token = Ok ());
        Alcotest.(check bool) "double-spend caught within the round" true
          (Ratelimit.admit gate token = Error `Double_spend);
        Alcotest.(check int) "one serial rolled back" 1 (Ratelimit.rollback_round gate);
        (* the bug this guards against: the serial stayed spent across the
           abort, so the client's resubmission bounced as a double-spend *)
        Ratelimit.begin_round gate;
        Alcotest.(check bool) "same token admits again after rollback" true
          (Ratelimit.admit gate token = Ok ());
        Ratelimit.commit_round gate;
        Ratelimit.begin_round gate;
        Alcotest.(check bool) "committed round is final" true
          (Ratelimit.admit gate token = Error `Double_spend);
        Alcotest.(check int) "nothing provisional to roll back" 0
          (Ratelimit.rollback_round gate));
    Alcotest.test_case "round scoping misuse raises" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"rollback-misuse" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:5 in
        let gate = Ratelimit.create_gate pr ~issuer_key:(Ratelimit.issuer_public issuer) in
        Alcotest.check_raises "commit without begin"
          (Invalid_argument "Ratelimit.commit_round: no open round") (fun () ->
            Ratelimit.commit_round gate);
        Alcotest.check_raises "rollback without begin"
          (Invalid_argument "Ratelimit.rollback_round: no open round") (fun () ->
            ignore (Ratelimit.rollback_round gate));
        Ratelimit.begin_round gate;
        Alcotest.check_raises "double begin"
          (Invalid_argument "Ratelimit.begin_round: round already open") (fun () ->
            Ratelimit.begin_round gate);
        Ratelimit.commit_round gate);
    Alcotest.test_case "entry abort discards the batch and un-spends tokens" `Quick (fun () ->
        let pr = p () in
        let rng = Drbg.create ~seed:"rollback-entry" in
        let issuer = Ratelimit.create_issuer pr ~rng ~quota_per_day:5 in
        let entry = Entry.create pr ~token_issuer_key:(Ratelimit.issuer_public issuer) () in
        let ann =
          {
            Entry.round = 1;
            mode = `AddFriend;
            server_pks = [];
            mpk_agg = None;
            num_mailboxes = 1;
          }
        in
        let token = mint_token pr rng issuer in
        Entry.open_round entry ann;
        Alcotest.(check bool) "submission accepted" true
          (Entry.submit entry ~token "onion-bytes" = Ok ());
        Alcotest.(check int) "abort rolled back one token" 1 (Entry.abort_round entry);
        (* round re-runs: the same token must be spendable again and the
           aborted batch must not leak into the new round *)
        Entry.open_round entry { ann with Entry.round = 1 };
        Alcotest.(check bool) "resubmission accepted after abort" true
          (Entry.submit entry ~token "onion-bytes" = Ok ());
        let batch = Entry.close_round entry in
        Alcotest.(check int) "batch holds only the re-run's submission" 1 (Array.length batch));
  ]

(* ---- keywheel offline catch-up ---- *)

let secret_32 tag = Drbg.bytes (Drbg.create ~seed:("kw-secret-" ^ tag)) 32

let keywheel_tests =
  [
    Alcotest.test_case "catch-up lands on the never-offline twin's keys" `Quick (fun () ->
        let w = Keywheel.create ~owner:"me@x" in
        List.iter
          (fun (email, secret, round) -> Keywheel.add_friend w ~email ~secret ~round)
          [
            ("a@x", secret_32 "a", 1); ("b@x", secret_32 "b", 2); ("c@x", secret_32 "c", 5);
          ];
        let twin = Keywheel.copy w in
        (* the twin stays online, advancing one round at a time *)
        for round = 1 to 9 do
          Keywheel.advance_to twin ~round
        done;
        (* the wheel goes dark and replays the whole epoch in one call *)
        Alcotest.(check int) "nine rounds caught up" 9 (Keywheel.catch_up w ~through:9);
        Alcotest.(check int) "clock synced" (Keywheel.current_round twin)
          (Keywheel.current_round w);
        List.iter
          (fun email ->
            Alcotest.(check (option string))
              (email ^ " session key matches twin")
              (Keywheel.session_key twin ~email) (Keywheel.session_key w ~email);
            for intent = 0 to 3 do
              Alcotest.(check (option string))
                (Printf.sprintf "%s intent %d token matches twin" email intent)
                (Keywheel.dial_token twin ~email ~intent)
                (Keywheel.dial_token w ~email ~intent)
            done)
          [ "a@x"; "b@x"; "c@x" ];
        Alcotest.(check int) "stale catch-up is a no-op" 0 (Keywheel.catch_up w ~through:3));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let w = Keywheel.create ~owner:"me@x" in
        Keywheel.add_friend w ~email:"a@x" ~secret:(secret_32 "copy") ~round:1;
        let twin = Keywheel.copy w in
        Keywheel.advance_to w ~round:5;
        Alcotest.(check int) "original advanced" 5 (Keywheel.current_round w);
        Alcotest.(check int) "copy untouched" 0 (Keywheel.current_round twin);
        Keywheel.remove_friend w ~email:"a@x";
        Alcotest.(check int) "copy keeps the friend" 1 (Keywheel.friend_count twin));
  ]

let suite =
  schedule_tests @ sim_tests @ deployment_tests @ rollback_tests @ keywheel_tests
