(* Cross-validation of the fixed-limb Montgomery kernel against the
   generic Bigint + Barrett reference: every kernel operation, on both
   parameter-set moduli, over randomized inputs plus the edge vectors
   0, 1, p−1. The windowed scalar multiplication and fixed-base tables in
   Curve are validated against the affine ladder the same way. *)

module B = Alpenhorn_bigint.Bigint
module Field = Alpenhorn_pairing.Field
module Mont = Alpenhorn_pairing.Mont
module Curve = Alpenhorn_pairing.Curve
module Params = Alpenhorn_pairing.Params
module Drbg = Alpenhorn_crypto.Drbg

let params = lazy (Params.test ())
let fp () = (Lazy.force params).Params.fp

(* a second, unrelated modulus (the production prime) so limb-count-specific
   bugs can't hide behind the test curve's 72-bit p *)
let production_fp = lazy (Params.production ()).Params.fp

let check_b msg expected got = Alcotest.(check string) msg (B.to_string expected) (B.to_string got)

let edge_vectors f =
  let p = Field.modulus f in
  [ B.zero; B.one; B.two; B.sub p B.one; B.sub p B.two; B.shift_right p 1 ]

(* run [check f a b] on random pairs and on all pairs of edge vectors *)
let cross f ~seed ~rounds check =
  let p = Field.modulus f in
  let rng = Drbg.create ~seed in
  let edges = edge_vectors f in
  List.iter (fun a -> List.iter (fun b -> check f a b) edges) edges;
  for _ = 1 to rounds do
    check f (Drbg.bigint_below rng p) (Drbg.bigint_below rng p)
  done

let roundtrip f a b =
  let ctx = Field.mont_ctx f in
  check_b "of/to roundtrip" a (Mont.to_bigint ctx (Mont.of_bigint ctx a));
  (* of_bigint must also reduce non-canonical and negative inputs *)
  let p = Field.modulus f in
  check_b "non-canonical" a (Mont.to_bigint ctx (Mont.of_bigint ctx (B.add a p)));
  check_b "negative"
    (B.rem (B.sub b (B.mul p p)) p)
    (Mont.to_bigint ctx (Mont.of_bigint ctx (B.sub b (B.mul p p))))

let ring_ops f a b =
  let ctx = Field.mont_ctx f in
  let am = Mont.of_bigint ctx a and bm = Mont.of_bigint ctx b in
  let out op = Mont.to_bigint ctx op in
  check_b "mul" (Field.mul f a b) (out (Mont.mul ctx am bm));
  check_b "sqr" (Field.sqr f a) (out (Mont.sqr ctx am));
  check_b "add" (Field.add f a b) (out (Mont.add ctx am bm));
  check_b "sub" (Field.sub f a b) (out (Mont.sub ctx am bm));
  check_b "neg" (Field.neg f a) (out (Mont.neg ctx am));
  check_b "mul_small 2" (Field.mul_int f a 2) (out (Mont.mul_small ctx am 2));
  check_b "mul_small 3" (Field.mul_int f a 3) (out (Mont.mul_small ctx am 3));
  check_b "mul_small 8" (Field.mul_int f a 8) (out (Mont.mul_small ctx am 8));
  check_b "mul_small 12" (Field.mul_int f a 12) (out (Mont.mul_small ctx am 12));
  Alcotest.(check bool) "equal agrees" (B.equal a b) (Mont.equal am bm);
  Alcotest.(check bool) "is_zero agrees" (B.is_zero a) (Mont.is_zero am)

let inv_pow f a b =
  let ctx = Field.mont_ctx f in
  let am = Mont.of_bigint ctx a in
  if not (B.is_zero a) then
    check_b "inv" (Field.inv f a) (Mont.to_bigint ctx (Mont.inv ctx am))
  else
    Alcotest.check_raises "inv 0 raises" Division_by_zero (fun () -> ignore (Mont.inv ctx am));
  (* b doubles as the exponent: plain integer, can exceed p *)
  check_b "pow" (Field.pow f a b) (Mont.to_bigint ctx (Mont.pow ctx am b));
  check_b "pow 0 = 1" B.one (Mont.to_bigint ctx (Mont.pow ctx am B.zero))

let f2_ops f a b =
  let ctx = Field.mont_ctx f in
  let module Fp2 = Alpenhorn_pairing.Fp2 in
  let x = Fp2.make a b and y = Fp2.make b (Field.add f a b) in
  let lift (e : Fp2.el) =
    { Mont.F2.re = Mont.of_bigint ctx e.Fp2.re; im = Mont.of_bigint ctx e.Fp2.im }
  in
  let lower (e : Mont.F2.f2) =
    Fp2.make (Mont.to_bigint ctx e.Mont.F2.re) (Mont.to_bigint ctx e.Mont.F2.im)
  in
  let check_f2 msg expected got =
    Alcotest.(check bool) msg true (Fp2.equal expected (lower got))
  in
  let xm = lift x and ym = lift y in
  check_f2 "f2 mul" (Fp2.mul f x y) (Mont.F2.mul ctx xm ym);
  check_f2 "f2 sqr" (Fp2.sqr f x) (Mont.F2.sqr ctx xm);
  check_f2 "f2 add" (Fp2.add f x y) (Mont.F2.add ctx xm ym);
  check_f2 "f2 sub" (Fp2.sub f x y) (Mont.F2.sub ctx xm ym);
  check_f2 "f2 mul_el" (Fp2.mul_fp f x a) (Mont.F2.mul_el ctx xm (Mont.of_bigint ctx a));
  if not (Fp2.is_zero x) then check_f2 "f2 inv" (Fp2.inv f x) (Mont.F2.inv ctx xm);
  check_f2 "f2 pow" (Fp2.pow f x b) (Mont.F2.pow ctx xm b)

let kernel_tests =
  let t name check =
    Alcotest.test_case name `Quick (fun () ->
        cross (fp ()) ~seed:("mont-" ^ name) ~rounds:250 check;
        cross (Lazy.force production_fp) ~seed:("mont-prod-" ^ name) ~rounds:60 check)
  in
  [
    t "roundtrip" roundtrip;
    t "ring ops" ring_ops;
    t "inv and pow" inv_pow;
    t "fp2 ops" f2_ops;
  ]

(* ---- windowed and fixed-base scalar multiplication ---- *)

let random_point f rng =
  (* y → x = cbrt(y² − 1), the same admissible encoding hash_to_group uses *)
  let rec go () =
    let y = Drbg.bigint_below rng (Field.modulus f) in
    let y2m1 = Field.sub f (Field.sqr f y) B.one in
    if Field.is_zero y2m1 then go ()
    else Curve.make f ~x:(Field.cbrt f y2m1) ~y
  in
  go ()

let scalar_mult_tests =
  [
    Alcotest.test_case "windowed mul matches affine ladder" `Quick (fun () ->
        let pr = Lazy.force params in
        let f = pr.Params.fp in
        let rng = Drbg.create ~seed:"mont-smul" in
        for _ = 1 to 150 do
          let pt = random_point f rng in
          let k = Drbg.bigint_below rng (Field.modulus f) in
          Alcotest.(check bool) "mul = mul_affine" true
            (Curve.equal (Curve.mul f k pt) (Curve.mul_affine f k pt))
        done);
    Alcotest.test_case "windowed mul edge scalars and points" `Quick (fun () ->
        let pr = Lazy.force params in
        let f = pr.Params.fp in
        let g = pr.Params.g in
        let two_torsion = Curve.make f ~x:(Field.neg f B.one) ~y:B.zero in
        List.iter
          (fun k ->
            List.iter
              (fun pt ->
                Alcotest.(check bool) "mul = mul_affine" true
                  (Curve.equal (Curve.mul f k pt) (Curve.mul_affine f k pt)))
              [ Curve.infinity; g; two_torsion; Curve.neg f g ])
          [ B.zero; B.one; B.two; B.of_int 15; B.of_int 16; B.of_int 17; pr.Params.q;
            B.sub pr.Params.q B.one; Field.modulus f ]);
    Alcotest.test_case "fixed-base table matches affine ladder" `Quick (fun () ->
        let pr = Lazy.force params in
        let f = pr.Params.fp in
        let rng = Drbg.create ~seed:"mont-fixed" in
        let tbl = Curve.Fixed_base.make f pr.Params.g in
        for _ = 1 to 100 do
          let k = Drbg.bigint_below rng pr.Params.q in
          Alcotest.(check bool) "fixed = affine" true
            (Curve.equal (Curve.Fixed_base.mul f tbl k) (Curve.mul_affine f k pr.Params.g))
        done;
        List.iter
          (fun k ->
            Alcotest.(check bool) "edge scalar" true
              (Curve.equal (Curve.Fixed_base.mul f tbl k) (Curve.mul_affine f k pr.Params.g)))
          [ B.zero; B.one; B.two; B.of_int 16; pr.Params.q; B.sub pr.Params.q B.one;
            (* wider than the table's windows: falls back to the generic path *)
            B.mul (Field.modulus f) (Field.modulus f) ]);
    Alcotest.test_case "fixed-base table for infinity" `Quick (fun () ->
        let f = (Lazy.force params).Params.fp in
        let tbl = Curve.Fixed_base.make f Curve.infinity in
        Alcotest.(check bool) "0 * Inf" true
          (Curve.equal Curve.infinity (Curve.Fixed_base.mul f tbl (B.of_int 12345))));
    Alcotest.test_case "Params.mul_g matches plain mul of g" `Quick (fun () ->
        let pr = Lazy.force params in
        let rng = Drbg.create ~seed:"mont-mulg" in
        for _ = 1 to 50 do
          let k = Drbg.bigint_below rng pr.Params.q in
          Alcotest.(check bool) "mul_g" true
            (Curve.equal (Params.mul_g pr k) (Curve.mul pr.Params.fp k pr.Params.g))
        done);
  ]

let suite = kernel_tests @ scalar_mult_tests
