(* Whole-system integration tests on the in-process deployment: the real
   protocol end to end (IBE, mixnet, keywheels, Bloom filters). *)

module Curve = Alpenhorn_pairing.Curve
module Keywheel = Alpenhorn_keywheel.Keywheel
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Pkg = Alpenhorn_pkg.Pkg

let setup ?(config = Config.test) ~seed emails =
  let d = Deployment.create ~config ~seed in
  let clients =
    List.map (fun email -> Deployment.new_client d ~email ~callbacks:Client.null_callbacks) emails
  in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "register %s: %s" (Client.email c) (Pkg.error_to_string e))
    clients;
  (d, clients)

let run_af d n = List.init n (fun _ -> Deployment.run_addfriend_round d ())
let run_dial d n = List.init n (fun _ -> Deployment.run_dialing_round d ())

let has_event stats f = List.exists (fun s -> List.exists f s.Deployment.events) stats
let has_call stats f = List.exists (fun s -> List.exists f s.Deployment.calls) stats

let befriend d a b =
  Client.add_friend a ~email:(Client.email b) ();
  let stats = run_af d 2 in
  Alcotest.(check bool)
    (Printf.sprintf "%s befriended %s" (Client.email a) (Client.email b))
    true
    (Client.is_friend a ~email:(Client.email b) && Client.is_friend b ~email:(Client.email a));
  stats

let unit_tests =
  [
    Alcotest.test_case "add-friend handshake completes in two rounds" `Quick (fun () ->
        let d, clients = setup ~seed:"i1" [ "alice@x"; "bob@x"; "carol@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 and carol = List.nth clients 2 in
        let stats = befriend d alice bob in
        Alcotest.(check bool) "accept event" true
          (has_event stats (function
            | "bob@x", Client.Friend_request_accepted "alice@x" -> true
            | _ -> false));
        Alcotest.(check bool) "confirm event" true
          (has_event stats (function
            | "alice@x", Client.Friend_confirmed "bob@x" -> true
            | _ -> false));
        (* carol was online the whole time and learned nothing *)
        Alcotest.(check (list string)) "carol has no friends" [] (Client.friends carol));
    Alcotest.test_case "keywheels agree after the handshake" `Quick (fun () ->
        let d, clients = setup ~seed:"i2" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        let ra = Keywheel.entry_round (Client.keywheel alice) ~email:"bob@x" in
        let rb = Keywheel.entry_round (Client.keywheel bob) ~email:"alice@x" in
        Alcotest.(check (option int)) "same entry round" ra rb;
        (* drive the wheels: alice's outgoing token is what bob scans for *)
        let target = Option.get ra + 3 in
        Keywheel.advance_to (Client.keywheel alice) ~round:target;
        Keywheel.advance_to (Client.keywheel bob) ~round:target;
        let bob_expects =
          Keywheel.expected_tokens (Client.keywheel bob) ~max_intents:1
          |> List.filter_map (fun (peer, _, tok) -> if peer = "alice@x" then Some tok else None)
        in
        (match (Keywheel.dial_token (Client.keywheel alice) ~email:"bob@x" ~intent:0, bob_expects) with
         | Some t1, [ t2 ] -> Alcotest.(check string) "tokens equal" t1 t2
         | _ -> Alcotest.fail "token missing"));
    Alcotest.test_case "call delivers the right intent and matching keys" `Quick (fun () ->
        let d, clients = setup ~seed:"i3" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        Client.call alice ~email:"bob@x" ~intent:3;
        let stats = run_dial d 4 in
        let received =
          List.concat_map (fun s -> s.Deployment.calls) stats
          |> List.filter_map (function
               | "bob@x", Client.Incoming_call { peer = "alice@x"; intent; session_key } ->
                 Some (intent, session_key)
               | _ -> None)
        in
        match received with
        | [ (intent, _) ] ->
          Alcotest.(check int) "intent" 3 intent;
          Alcotest.(check (option string)) "session keys agree"
            (Keywheel.session_key (Client.keywheel alice) ~email:"bob@x")
            (Keywheel.session_key (Client.keywheel bob) ~email:"alice@x")
        | [] -> Alcotest.fail "call not delivered"
        | _ -> Alcotest.fail "call delivered more than once");
    Alcotest.test_case "simultaneous add-friend converges" `Quick (fun () ->
        let d, clients = setup ~seed:"i4" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        Client.add_friend alice ~email:"bob@x" ();
        Client.add_friend bob ~email:"alice@x" ();
        let _ = run_af d 2 in
        Alcotest.(check bool) "both friends" true
          (Client.is_friend alice ~email:"bob@x" && Client.is_friend bob ~email:"alice@x");
        Alcotest.(check (option int)) "entry rounds agree"
          (Keywheel.entry_round (Client.keywheel alice) ~email:"bob@x")
          (Keywheel.entry_round (Client.keywheel bob) ~email:"alice@x");
        (* and the secrets really are the same: call each other *)
        Client.call alice ~email:"bob@x" ~intent:0;
        let stats = run_dial d 4 in
        Alcotest.(check bool) "call works" true
          (has_call stats (function
            | "bob@x", Client.Incoming_call { peer = "alice@x"; _ } -> true
            | _ -> false)));
    Alcotest.test_case "rejection leaves no keywheel entry on the rejecter" `Quick (fun () ->
        let d = Deployment.create ~config:Config.test ~seed:"i5" in
        let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        let reject_all =
          { Client.null_callbacks with Client.new_friend = (fun ~email:_ ~key:_ -> false) }
        in
        let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:reject_all in
        (match Deployment.register d alice with Ok () -> () | Error _ -> assert false);
        (match Deployment.register d bob with Ok () -> () | Error _ -> assert false);
        Client.add_friend alice ~email:"bob@x" ();
        let stats = run_af d 2 in
        Alcotest.(check bool) "rejected event" true
          (has_event stats (function
            | "bob@x", Client.Friend_request_rejected "alice@x" -> true
            | _ -> false));
        Alcotest.(check bool) "no friendship" true
          ((not (Client.is_friend bob ~email:"alice@x")) && not (Client.is_friend alice ~email:"bob@x")));
    Alcotest.test_case "multiple friendships across many clients" `Quick (fun () ->
        let emails = List.init 5 (fun i -> Printf.sprintf "user%d@x" i) in
        let d, clients = setup ~seed:"i6" emails in
        let u = Array.of_list clients in
        (* star topology around user0, plus one extra edge *)
        for i = 1 to 4 do
          Client.add_friend u.(0) ~email:(Client.email u.(i)) ()
        done;
        Client.add_friend u.(1) ~email:(Client.email u.(2)) ();
        (* each client sends at most one request per round: give it time *)
        let _ = run_af d 8 in
        for i = 1 to 4 do
          Alcotest.(check bool)
            (Printf.sprintf "user0 <-> user%d" i)
            true
            (Client.is_friend u.(0) ~email:(Client.email u.(i))
            && Client.is_friend u.(i) ~email:(Client.email u.(0)))
        done;
        Alcotest.(check bool) "user1 <-> user2" true
          (Client.is_friend u.(1) ~email:"user2@x" && Client.is_friend u.(2) ~email:"user1@x");
        Alcotest.(check int) "user0 has 4 friends" 4 (List.length (Client.friends u.(0))));
    Alcotest.test_case "calls in both directions at once" `Quick (fun () ->
        let d, clients = setup ~seed:"i7" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        Client.call alice ~email:"bob@x" ~intent:1;
        Client.call bob ~email:"alice@x" ~intent:2;
        let stats = run_dial d 4 in
        Alcotest.(check bool) "bob got intent 1" true
          (has_call stats (function
            | "bob@x", Client.Incoming_call { peer = "alice@x"; intent = 1; _ } -> true
            | _ -> false));
        Alcotest.(check bool) "alice got intent 2" true
          (has_call stats (function
            | "alice@x", Client.Incoming_call { peer = "bob@x"; intent = 2; _ } -> true
            | _ -> false)));
    Alcotest.test_case "calling a non-friend delivers nothing" `Quick (fun () ->
        let d, clients = setup ~seed:"i8" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 in
        Client.call alice ~email:"bob@x" ~intent:0;
        let stats = run_dial d 3 in
        Alcotest.(check bool) "no calls" false (has_call stats (fun _ -> true)));
    Alcotest.test_case "TOFU pins the first key" `Quick (fun () ->
        let d, clients = setup ~seed:"i9" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        match Client.pinned_key bob ~email:"alice@x" with
        | None -> Alcotest.fail "no pinned key"
        | Some k ->
          Alcotest.(check bool) "pinned = alice's key" true
            (Curve.equal k (Client.signing_public alice)));
    Alcotest.test_case "out-of-band key mismatch blocks the confirmation" `Quick (fun () ->
        let d, clients = setup ~seed:"i10" [ "alice@x"; "bob@x"; "carol@x" ] in
        let alice = List.nth clients 0 and carol = List.nth clients 2 in
        (* alice expects the WRONG key for bob (she got carol's business card
           mixed up) *)
        Client.add_friend alice ~expected_key:(Client.signing_public carol) ~email:"bob@x" ();
        let stats = run_af d 2 in
        Alcotest.(check bool) "mismatch event" true
          (has_event stats (function
            | "alice@x", Client.Friend_request_key_mismatch "bob@x" -> true
            | _ -> false));
        Alcotest.(check bool) "no friendship for alice" false (Client.is_friend alice ~email:"bob@x"));
    Alcotest.test_case "clients going offline miss nothing fatal" `Quick (fun () ->
        (* bob skips the round where alice's request lands; the request is
           simply gone (mailboxes are per-round), so alice retries *)
        let d, clients = setup ~seed:"i11" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        Client.add_friend alice ~email:"bob@x" ();
        let _ = Deployment.run_addfriend_round d ~participants:[ alice ] () in
        Alcotest.(check bool) "not friends yet" false (Client.is_friend alice ~email:"bob@x");
        (* alice queues again; with both online the handshake completes *)
        Client.add_friend alice ~email:"bob@x" ();
        let _ = run_af d 2 in
        Alcotest.(check bool) "friends now" true
          (Client.is_friend alice ~email:"bob@x" && Client.is_friend bob ~email:"alice@x"));
    Alcotest.test_case "round stats are coherent" `Quick (fun () ->
        let d, clients = setup ~seed:"i12" [ "a@x"; "b@x"; "c@x"; "d@x" ] in
        ignore clients;
        let s = Deployment.run_addfriend_round d () in
        Alcotest.(check int) "all four submitted" 4 s.Deployment.requests_in;
        Alcotest.(check bool) "noise added" true (s.Deployment.noise_added > 0);
        (* everyone sent cover traffic: all dropped at the last hop *)
        Alcotest.(check int) "cover dropped" 4 s.Deployment.dropped;
        let ds = Deployment.run_dialing_round d () in
        Alcotest.(check int) "dial submissions" 4 ds.Deployment.tokens_in;
        Alcotest.(check bool) "clock advanced" true (Deployment.now d > 0));
    Alcotest.test_case "client state compromise recovery (§9)" `Quick (fun () ->
        let d, clients = setup ~seed:"i13" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        (* alice's machine is compromised: she deregisters everywhere with
           her old key, waits out the lockout, registers a new identity *)
        let sig_ = Client.sign_deregister alice in
        Array.iter
          (fun pkg ->
            match Pkg.deregister pkg ~now:(Deployment.now d) ~email:"alice@x" ~signature:sig_ with
            | Ok () -> ()
            | Error e -> Alcotest.failf "deregister: %s" (Pkg.error_to_string e))
          (Deployment.pkgs d);
        Deployment.advance_clock d ~seconds:(31 * 24 * 3600);
        let alice2 = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
        (match Deployment.register d alice2 with
         | Ok () -> ()
         | Error e -> Alcotest.failf "re-register: %s" (Pkg.error_to_string e));
        (* bob still has the old pinned key: the re-add shows a mismatch,
           which surfaces to the application as the paper prescribes *)
        Client.remove_friend bob ~email:"alice@x" (* bob clears the stale entry *);
        Client.add_friend alice2 ~email:"bob@x" ();
        let stats =
          List.init 2 (fun _ ->
              Deployment.run_addfriend_round d ~participants:[ alice2; bob ] ())
        in
        Alcotest.(check bool) "re-friended under new key" true
          (has_event stats (function
            | "alice@x", Client.Friend_confirmed "bob@x" -> true
            | _ -> false)));
  ]


(* §5.1: offline clients catch up from the dialing mailbox archive. *)
let catchup_tests =
  [
    Alcotest.test_case "offline client catches up on an archived call" `Quick (fun () ->
        let d, clients = setup ~seed:"c1" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        (* bob goes offline; alice keeps dialing; one round carries her call *)
        Client.call alice ~email:"bob@x" ~intent:1;
        for _ = 1 to 3 do
          ignore (Deployment.run_dialing_round d ~participants:[ alice ] ())
        done;
        Alcotest.(check bool) "bob is behind" true
          (Client.dialing_round bob < Deployment.dialing_round_number d);
        let events = Deployment.catch_up_client d bob in
        Alcotest.(check int) "bob synced" (Deployment.dialing_round_number d)
          (Client.dialing_round bob);
        Alcotest.(check bool) "call recovered" true
          (List.exists
             (function Client.Incoming_call { peer = "alice@x"; intent = 1; _ } -> true | _ -> false)
             events));
    Alcotest.test_case "calls older than the archive retention are lost but the wheel advances"
      `Quick (fun () ->
        (* test config retains 4 rounds *)
        let d, clients = setup ~seed:"c2" [ "alice@x"; "bob@x" ] in
        let alice = List.nth clients 0 and bob = List.nth clients 1 in
        let _ = befriend d alice bob in
        Client.call alice ~email:"bob@x" ~intent:0;
        (* the call goes out in an early round, then 6 more rounds pass:
           the carrying round ages out of the 4-round archive *)
        for _ = 1 to 7 do
          ignore (Deployment.run_dialing_round d ~participants:[ alice ] ())
        done;
        let events = Deployment.catch_up_client d bob in
        Alcotest.(check (list reject)) "call lost" [] events;
        Alcotest.(check int) "wheel advanced anyway (forward secrecy)"
          (Deployment.dialing_round_number d) (Client.dialing_round bob);
        (* the friendship is intact: a fresh call still works *)
        Client.call alice ~email:"bob@x" ~intent:2;
        let stats = run_dial d 2 in
        Alcotest.(check bool) "fresh call delivered" true
          (has_call stats (function
            | "bob@x", Client.Incoming_call { intent = 2; _ } -> true
            | _ -> false)));
    Alcotest.test_case "catch-up on an already-current client is a no-op" `Quick (fun () ->
        let d, clients = setup ~seed:"c3" [ "alice@x"; "bob@x" ] in
        let bob = List.nth clients 1 in
        let _ = run_dial d 2 in
        Alcotest.(check (list reject)) "nothing" [] (Deployment.catch_up_client d bob);
        Alcotest.(check int) "still synced" (Deployment.dialing_round_number d)
          (Client.dialing_round bob));
    Alcotest.test_case "archived_filter honors the retention window" `Quick (fun () ->
        let d, _ = setup ~seed:"c4" [ "alice@x" ] in
        let _ = run_dial d 6 in
        (* test config: 4 rounds retained; round 6 is current *)
        Alcotest.(check bool) "recent round present" true
          (Deployment.archived_filter d ~round:6 ~email:"alice@x" <> None);
        Alcotest.(check bool) "old round erased" true
          (Deployment.archived_filter d ~round:1 ~email:"alice@x" = None));
  ]

let suite = unit_tests @ catchup_tests

(* cross-cutting consistency checks *)
let consistency_tests =
  [
    Alcotest.test_case "deployments are reproducible from the seed" `Quick (fun () ->
        let run () =
          let d, clients = setup ~seed:"determinism" [ "alice@x"; "bob@x"; "carol@x" ] in
          let alice = List.nth clients 0 in
          Client.add_friend alice ~email:"bob@x" ();
          let s1 = Deployment.run_addfriend_round d () in
          let s2 = Deployment.run_dialing_round d () in
          ( s1.Deployment.noise_added,
            s1.Deployment.mailbox_bytes,
            s2.Deployment.dial_noise_added,
            s2.Deployment.filter_bytes,
            List.map fst s1.Deployment.events )
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "identical stats" true (a = b));
    Alcotest.test_case "measured mailbox size matches the cost-model formula" `Quick (fun () ->
        (* the formula that prices Figures 6-10 must agree with what the
           real deployment actually produces at small scale *)
        let config =
          { Config.test with
            Config.addfriend_noise_mu = 6.0;
            active_fraction = 1.0 (* everyone below queues a request *);
            faithful_noise = false (* noise sized, not IBE-encrypted: same bytes *) }
        in
        let d = Deployment.create ~config ~seed:"model-check" in
        let n = 12 in
        let clients =
          List.init n (fun i ->
              Deployment.new_client d ~email:(Printf.sprintf "u%d@x" i)
                ~callbacks:Client.null_callbacks)
        in
        List.iter
          (fun c -> match Deployment.register d c with Ok () -> () | Error _ -> assert false)
          clients;
        List.iteri
          (fun i c -> Client.add_friend c ~email:(Printf.sprintf "u%d@x" ((i + 1) mod n)) ())
          clients;
        let s = Deployment.run_addfriend_round d () in
        let measured = Array.fold_left ( + ) 0 s.Deployment.mailbox_bytes in
        (* expected: every real request plus all noise, priced at the fixed
           request size (b = 0 noise is exact) *)
        let request_bytes = Alpenhorn_core.Wire.request_ciphertext_size (Deployment.params d) in
        let expected = (n + s.Deployment.noise_added) * request_bytes in
        Alcotest.(check int) "bytes agree exactly" expected measured);
  ]

let suite = suite @ consistency_tests
