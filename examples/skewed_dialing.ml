(* Skewed popularity in miniature (§8.4).

   Forty clients form a social graph where a few users are far more popular
   than the rest; everyone dials under Zipf-skewed recipient choice while
   every client still submits exactly one message per round (cover traffic
   included). The example prints the per-mailbox balance, showing how noise
   floors the skew — the effect behind Fig 10's flat median.

   Run with: dune exec examples/skewed_dialing.exe *)

module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Zipf = Alpenhorn_sim.Zipf
module Drbg = Alpenhorn_crypto.Drbg

let n_clients = 40
let star_hub = 0 (* everyone is friends with user 0 and their ring neighbours *)

let () =
  let config = { Config.test with Config.dialing_noise_mu = 10.0 } in
  let d = Deployment.create ~config ~seed:"skewed" in
  let clients =
    Array.init n_clients (fun i ->
        Deployment.new_client d
          ~email:(Printf.sprintf "user%02d@x" i)
          ~callbacks:Client.null_callbacks)
  in
  Array.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    clients;

  (* social graph: a star around the hub plus a ring, built with the real
     add-friend protocol *)
  for i = 1 to n_clients - 1 do
    Client.add_friend clients.(i) ~email:(Client.email clients.(star_hub)) ();
    Client.add_friend clients.(i) ~email:(Client.email clients.((i + 1) mod n_clients)) ()
  done;
  Printf.printf "building the social graph (star + ring) over the add-friend protocol...\n%!";
  for _ = 1 to 6 do
    ignore (Deployment.run_addfriend_round d ())
  done;
  let edges = Array.fold_left (fun acc c -> acc + List.length (Client.friends c)) 0 clients in
  Printf.printf "  %d friendship edges established\n" (edges / 2);

  (* dial under Zipf-skewed recipient choice: user 0 is the celebrity *)
  let zipf = Zipf.create ~n:n_clients ~s:1.5 in
  let rng = Drbg.create ~seed:"skewed-calls" in
  Printf.printf "\ndialing with Zipf(s=1.5) recipients (top user gets %.0f%% of calls)\n"
    (Zipf.pmf zipf 1 *. 100.0);
  let delivered = ref 0 and placed = ref 0 in
  for round = 1 to 10 do
    (* a third of the clients try to call someone each round *)
    Array.iter
      (fun c ->
        if Drbg.float rng < 0.33 then begin
          let target = clients.(Zipf.sample zipf rng - 1) in
          if Client.is_friend c ~email:(Client.email target) then begin
            Client.call c ~email:(Client.email target) ~intent:0;
            incr placed
          end
        end)
      clients;
    let ds = Deployment.run_dialing_round d () in
    delivered := !delivered + List.length ds.Deployment.calls;
    Printf.printf "  round %2d: %2d calls delivered, filters: %s bytes\n" round
      (List.length ds.Deployment.calls)
      (String.concat "+" (Array.to_list (Array.map string_of_int ds.Deployment.filter_bytes)))
  done;
  Printf.printf "\n%d calls placed, %d delivered (the rest remain queued: one per round)\n"
    !placed !delivered;
  Printf.printf "every client uploaded exactly one token-sized message per round regardless.\n"
