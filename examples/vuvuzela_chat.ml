(* Vuvuzela integration (§8.5): Alpenhorn bootstraps a metadata-private
   conversation.

   The paper replaced Vuvuzela's dialing protocol with Alpenhorn in ~200
   lines; this example is that integration in miniature. Alpenhorn's Call
   hands both sides a session key, which keys the Vuvuzela-style dead-drop
   conversation — no public keys were ever exchanged out of band.

   Run with: dune exec examples/vuvuzela_chat.exe *)

module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module V = Alpenhorn_vuvuzela.Vuvuzela

(* The glue an application writes: when a call connects, open a
   conversation keyed by the session key. *)
type endpoint = { mutable convo : V.conversation option }

let () =
  let d = Deployment.create ~config:Config.test ~seed:"vuvuzela-chat" in
  let alice_ep = { convo = None } and bob_ep = { convo = None } in
  let alice_callbacks =
    {
      Client.null_callbacks with
      Client.call_placed =
        (fun ~email ~intent:_ ~session_key ->
          Printf.printf "[alice] call to %s connected; opening conversation\n" email;
          alice_ep.convo <- Some (V.start ~session_key ~role:`Caller));
    }
  in
  let bob_callbacks =
    {
      Client.null_callbacks with
      Client.incoming_call =
        (fun ~email ~intent ~session_key ->
          Printf.printf "[bob] incoming call from %s (intent %d: \"let's chat right now\")\n"
            email intent;
          bob_ep.convo <- Some (V.start ~session_key ~role:`Callee));
    }
  in
  let alice = Deployment.new_client d ~email:"alice@example.org" ~callbacks:alice_callbacks in
  let bob = Deployment.new_client d ~email:"bob@example.org" ~callbacks:bob_callbacks in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    [ alice; bob ];

  (* bootstrap: add-friend handshake, then dial with intent 1 *)
  Client.add_friend alice ~email:"bob@example.org" ();
  ignore (Deployment.run_addfriend_round d ());
  ignore (Deployment.run_addfriend_round d ());
  Client.call alice ~email:"bob@example.org" ~intent:1;
  let guard = ref 0 in
  while (alice_ep.convo = None || bob_ep.convo = None) && !guard < 6 do
    incr guard;
    ignore (Deployment.run_dialing_round d ())
  done;

  let ca = Option.get alice_ep.convo and cb = Option.get bob_ep.convo in
  let server = V.create_server () in

  (* a short conversation; constant-rate — a side with nothing to say
     deposits padding *)
  let script =
    [
      (Some "hey bob! this channel leaked zero metadata", Some "alice! even the dialing?");
      (Some "yep - dial tokens in a Bloom filter", None);
      (None, Some "and the friend request?");
      (Some "IBE to your email address, anytrust PKGs", Some "neat. talk tomorrow");
    ]
  in
  List.iteri
    (fun i (from_alice, from_bob) ->
      V.deposit ca server from_alice;
      V.deposit cb server from_bob;
      V.exchange server;
      let show who = function
        | None -> Printf.printf "  round %d: [%s] (no message this round)\n" i who
        | Some (Some m) -> Printf.printf "  round %d: [%s] received: %s\n" i who m
        | Some None -> Printf.printf "  round %d: [%s] received padding\n" i who
      in
      show "bob" (V.retrieve cb server);
      show "alice" (V.retrieve ca server))
    script;
  Printf.printf "\nConversation complete over %d constant-rate rounds.\n" (List.length script)
