(* Team onboarding: bootstrapping a fully-connected secure mesh.

   A team lead onboards three new members knowing only their email
   addresses. Every pairwise friendship is established through the
   add-friend protocol, every session key through the dialing protocol,
   and the team then exchanges messages over pairwise dead-drop
   conversations — a group channel built from Alpenhorn-bootstrapped
   pairwise keys, with no key ever exchanged out of band.

   Run with: dune exec examples/team_onboarding.exe *)

module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module V = Alpenhorn_vuvuzela.Vuvuzela

let team = [| "lead@corp"; "ana@corp"; "ben@corp"; "cy@corp" |]
let n = Array.length team

let () =
  let d = Deployment.create ~config:Config.test ~seed:"team" in
  (* session keys per directed pair, captured from the call callbacks *)
  let keys = Hashtbl.create 16 in
  let callbacks_for me =
    {
      Client.null_callbacks with
      Client.call_placed =
        (fun ~email ~intent:_ ~session_key -> Hashtbl.replace keys (me, email) session_key);
      Client.incoming_call =
        (fun ~email ~intent:_ ~session_key -> Hashtbl.replace keys (me, email) session_key);
    }
  in
  let clients = Array.map (fun email -> Deployment.new_client d ~email ~callbacks:(callbacks_for email)) team in
  Array.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    clients;
  print_endline "team registered; onboarding the full mesh...";

  (* every pair becomes friends (6 edges); one request per client per round *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Client.add_friend clients.(i) ~email:team.(j) ()
    done
  done;
  let af_rounds = ref 0 in
  let mesh_complete () =
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && not (Client.is_friend clients.(i) ~email:team.(j)) then ok := false
      done
    done;
    !ok
  in
  while (not (mesh_complete ())) && !af_rounds < 12 do
    incr af_rounds;
    ignore (Deployment.run_addfriend_round d ())
  done;
  Printf.printf "mesh of %d friendships complete after %d add-friend rounds\n"
    (n * (n - 1) / 2) !af_rounds;

  (* the lead calls everyone to open channels *)
  for j = 1 to n - 1 do
    Client.call clients.(0) ~email:team.(j) ~intent:0
  done;
  let dial_rounds = ref 0 in
  while Hashtbl.length keys < 2 * (n - 1) && !dial_rounds < 10 do
    incr dial_rounds;
    ignore (Deployment.run_dialing_round d ())
  done;
  Printf.printf "%d calls connected after %d dialing rounds\n" (n - 1) !dial_rounds;

  (* group message: the lead fans out over the pairwise conversations *)
  let server = V.create_server () in
  let convos =
    List.init (n - 1) (fun k ->
        let member = team.(k + 1) in
        let k_lead = Hashtbl.find keys (team.(0), member) in
        let k_member = Hashtbl.find keys (member, team.(0)) in
        assert (k_lead = k_member);
        ( member,
          V.start ~session_key:k_lead ~role:`Caller,
          V.start ~session_key:k_member ~role:`Callee ))
  in
  List.iter (fun (_, lead_side, member_side) ->
      V.deposit lead_side server (Some "standup moved to 10:30, pass it on");
      V.deposit member_side server None)
    convos;
  V.exchange server;
  List.iter
    (fun (member, _, member_side) ->
      match V.retrieve member_side server with
      | Some (Some msg) -> Printf.printf "  [%s] got: %s\n" member msg
      | _ -> failwith "group fan-out failed")
    convos;
  print_endline "group fan-out delivered over Alpenhorn-bootstrapped pairwise channels."
