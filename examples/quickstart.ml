(* Quickstart: the paper's §3 walkthrough, end to end.

   Alice adds Bob as a friend knowing only his email address; Bob accepts;
   the next day Alice calls him and both ends hold the same fresh session
   key. Every step below runs the real protocol: IBE-encrypted friend
   requests through a 3-server anytrust mixnet, PKG key extraction,
   keywheels and a Bloom-filter dialing mailbox.

   Run with: dune exec examples/quickstart.exe *)

module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment

let section title = Printf.printf "\n== %s ==\n%!" title

let () =
  section "Deployment";
  let config = Config.test in
  let d = Deployment.create ~config ~seed:"quickstart" in
  Printf.printf "3 PKG servers, %d-server mixnet chain, parameters '%s'\n"
    config.Config.chain_length config.Config.param_name;

  section "Register (Fig 1: Register)";
  (* Bob's application surfaces incoming friend requests and calls. *)
  let bob_events = Queue.create () in
  let bob_callbacks =
    {
      Client.null_callbacks with
      Client.new_friend =
        (fun ~email ~key:_ ->
          Printf.printf "  [bob] NewFriend(%s) -> accepting\n" email;
          true);
      Client.incoming_call =
        (fun ~email ~intent ~session_key ->
          Printf.printf "  [bob] IncomingCall(%s, intent=%d)\n" email intent;
          Queue.add session_key bob_events);
    }
  in
  let alice_key = ref None in
  let alice_callbacks =
    {
      Client.null_callbacks with
      Client.confirmed_friend =
        (fun ~email -> Printf.printf "  [alice] friendship with %s confirmed\n" email);
      Client.call_placed =
        (fun ~email ~intent ~session_key ->
          Printf.printf "  [alice] Call(%s, intent=%d) placed\n" email intent;
          alice_key := Some session_key);
    }
  in
  let alice = Deployment.new_client d ~email:"alice@gmail.com" ~callbacks:alice_callbacks in
  let bob = Deployment.new_client d ~email:"bob@gmail.com" ~callbacks:bob_callbacks in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> Printf.printf "  registered %s (confirmation emails verified)\n" (Client.email c)
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    [ alice; bob ];

  section "AddFriend (Fig 1: AddFriend, §4)";
  Client.add_friend alice ~email:"bob@gmail.com" ();
  Printf.printf "  alice queued AddFriend(\"bob@gmail.com\", nil)\n";
  let s1 = Deployment.run_addfriend_round d () in
  Printf.printf "  round %d: %d submissions, %d noise messages, %d mailboxes\n"
    s1.Deployment.af_round s1.Deployment.requests_in s1.Deployment.noise_added
    s1.Deployment.num_mailboxes;
  let s2 = Deployment.run_addfriend_round d () in
  Printf.printf "  round %d: bob's confirmation delivered\n" s2.Deployment.af_round;
  Printf.printf "  alice's friends: [%s]\n" (String.concat "; " (Client.friends alice));
  Printf.printf "  bob's friends:   [%s]\n" (String.concat "; " (Client.friends bob));

  section "Call (Fig 1: Call, §5)";
  Client.call alice ~email:"bob@gmail.com" ~intent:0;
  Printf.printf "  alice queued Call(\"bob@gmail.com\", 0)\n";
  let rounds = ref 0 in
  while Queue.is_empty bob_events && !rounds < 6 do
    incr rounds;
    let ds = Deployment.run_dialing_round d () in
    Printf.printf "  dialing round %d: %d tokens in, Bloom filter %d bytes\n"
      ds.Deployment.dial_round ds.Deployment.tokens_in
      (Array.fold_left ( + ) 0 ds.Deployment.filter_bytes)
  done;

  section "Session key";
  (match (!alice_key, Queue.take_opt bob_events) with
   | Some ka, Some kb when ka = kb ->
     Printf.printf "  both sides derived the same 256-bit session key: %s...\n"
       (String.sub (Alpenhorn_crypto.Util.to_hex ka) 0 16)
   | _ -> failwith "session keys disagree");

  section "Telemetry (what the rounds above cost)";
  (* everything was instrumented as it ran; dump the default registry *)
  let module Tel = Alpenhorn_telemetry.Telemetry in
  Format.printf "%a%!" Tel.Snapshot.pp_table (Tel.Snapshot.take Tel.default);
  Printf.printf "\nQuickstart complete.\n"
