(* Client compromise and recovery (§9).

   Alice's laptop is stolen. The thief holds her long-term signing key and
   keywheel state. This example walks the paper's recovery procedure:
   deregister with the old key, sit out the 30-day lockout, re-register a
   new key, and re-run the add-friend protocol with each friend — while the
   PKG lockout policy keeps the thief from hijacking the account in the
   meantime.

   Run with: dune exec examples/recovery.exe *)

module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Pkg = Alpenhorn_pkg.Pkg

let day = 24 * 3600

let step =
  let n = ref 0 in
  fun msg ->
    incr n;
    Printf.printf "\n%d. %s\n%!" !n msg

let () =
  let d = Deployment.create ~config:Config.test ~seed:"recovery" in
  let alice = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
  let bob = Deployment.new_client d ~email:"bob@x" ~callbacks:Client.null_callbacks in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> failwith (Pkg.error_to_string e))
    [ alice; bob ];

  step "Alice and Bob become friends (normal add-friend handshake)";
  Client.add_friend alice ~email:"bob@x" ();
  ignore (Deployment.run_addfriend_round d ());
  ignore (Deployment.run_addfriend_round d ());
  Printf.printf "   friends: %b\n" (Client.is_friend alice ~email:"bob@x");

  step "Alice makes an offline backup (long-term key + pinned friend keys, no keywheel)";
  let backup_blob = Client.export_backup alice ~passphrase:"correct horse battery" in
  Printf.printf "   sealed backup: %d bytes\n" (String.length backup_blob);

  step "Alice's laptop is stolen: she deregisters with her old signing key";
  let signature = Client.sign_deregister alice in
  Array.iter
    (fun pkg ->
      match Pkg.deregister pkg ~now:(Deployment.now d) ~email:"alice@x" ~signature with
      | Ok () -> ()
      | Error e -> failwith (Pkg.error_to_string e))
    (Deployment.pkgs d);
  Printf.printf "   deregistered at every PKG\n";

  step "The thief (who also controls her email) tries to register immediately";
  let thief = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
  (match Deployment.register d thief with
   | Error (Pkg.Locked_out remaining) ->
     Printf.printf "   PKG refuses: locked out for %d more days\n" (remaining / day)
   | Ok () -> failwith "lockout failed to protect the account!"
   | Error e -> failwith (Pkg.error_to_string e));

  step "Alice regains her email access and waits out the 30-day lockout";
  Deployment.advance_clock d ~seconds:(31 * day);
  let alice2 = Deployment.new_client d ~email:"alice@x" ~callbacks:Client.null_callbacks in
  (match Deployment.register d alice2 with
   | Ok () -> Printf.printf "   re-registered with a brand-new signing key\n"
   | Error e -> failwith (Pkg.error_to_string e));

  step "Alice restores her backup: bob's pinned key survives, keywheels do not";
  let backup =
    match
      Alpenhorn_core.Persist.import_identity (Deployment.params d)
        ~passphrase:"correct horse battery" backup_blob
    with
    | Some b -> b
    | None -> failwith "backup corrupt"
  in
  Printf.printf "   restored %d pinned friend key(s); keywheel empty as designed\n"
    (List.length backup.Alpenhorn_core.Persist.pinned);

  step "Bob clears the stale entry and they re-run add-friend";
  Client.remove_friend bob ~email:"alice@x";
  Client.add_friend alice2 ~email:"bob@x" ();
  ignore (Deployment.run_addfriend_round d ~participants:[ alice2; bob ] ());
  ignore (Deployment.run_addfriend_round d ~participants:[ alice2; bob ] ());
  Printf.printf "   friends again: %b (fresh keywheel, new long-term key)\n"
    (Client.is_friend bob ~email:"alice@x");

  step "A call under the new keywheel still works";
  Client.call alice2 ~email:"bob@x" ~intent:0;
  let got = ref false in
  for _ = 1 to 5 do
    let ds = Deployment.run_dialing_round d ~participants:[ alice2; bob ] () in
    if ds.Deployment.calls <> [] then got := true
  done;
  Printf.printf "   call delivered: %b\n" !got;
  Printf.printf "\nRecovery complete: the thief never obtained the new account.\n"
