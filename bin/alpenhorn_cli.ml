(* Standalone Alpenhorn client CLI (paper §8.5).

   The paper's Pond integration is a command-line client that lets users
   friend and call each other and prints the resulting shared secret,
   ready to paste into PANDA. This binary provides that flow against an
   in-process deployment, plus a parameter inspector and a what-if
   simulator over the evaluation cost model.

   Subcommands:
     session   interactive-style scripted session (friend + call + secret)
     params    show the pairing parameter sets
     simulate  price a deployment with the §8 cost model *)

module B = Alpenhorn_bigint.Bigint
module Params = Alpenhorn_pairing.Params
module Field = Alpenhorn_pairing.Field
module Config = Alpenhorn_core.Config
module Client = Alpenhorn_core.Client
module Deployment = Alpenhorn_core.Deployment
module Costmodel = Alpenhorn_sim.Costmodel
module Round_sim = Alpenhorn_sim.Round_sim
module Scale = Alpenhorn_sim.Scale
module Faults = Alpenhorn_sim.Faults
module Util = Alpenhorn_crypto.Util
module Tel = Alpenhorn_telemetry.Telemetry
module Trace = Alpenhorn_telemetry.Trace
module Events = Alpenhorn_telemetry.Events
module Slo = Alpenhorn_telemetry.Slo
module Expose = Alpenhorn_telemetry.Expose
module Timeseries = Alpenhorn_telemetry.Timeseries
module Runtime_stats = Alpenhorn_telemetry.Runtime_stats
module Dashboard = Alpenhorn_telemetry.Dashboard
module Collector = Alpenhorn_telemetry.Collector
module Listener = Alpenhorn_net.Listener
module Rpc = Alpenhorn_net.Rpc
module Servers = Alpenhorn_remote.Servers
module Net_deployment = Alpenhorn_remote.Net_deployment
module Parallel = Alpenhorn_parallel.Parallel

open Cmdliner

(* ---- telemetry output (shared by session and simulate) ---- *)

let write_file path body =
  try
    let oc = open_out path in
    output_string oc body;
    close_out oc
  with Sys_error e ->
    Printf.eprintf "alpenhorn: cannot write telemetry output: %s\n" e;
    exit 1

(* Dump the default registry: table on stderr with [--metrics], JSON
   snapshot with [--metrics-json FILE] (wrapping the machine calibration
   when one was used), Chrome trace_event JSON with [--trace FILE],
   JSON-lines event log with [--events FILE], SLO health report with
   [--slo]. Returns false when an SLO report came out unhealthy. *)
let dump_telemetry ~metrics ~json_path ~trace_path ?machine ?tracer ~events_path ~slo_rules () =
  let healthy = ref true in
  if metrics || json_path <> None || trace_path <> None || slo_rules <> None then begin
    let snap = Tel.Snapshot.take Tel.default in
    if metrics then begin
      Format.eprintf "%a@?" Tel.Snapshot.pp_table snap;
      (* per-message causal timelines, when tracing was on *)
      if tracer <> None then Format.eprintf "%a@?" Trace.pp_timelines snap
    end;
    Option.iter
      (fun path ->
        let telemetry_json = Tel.Snapshot.to_json snap in
        let body =
          match machine with
          | Some m ->
            Printf.sprintf "{\"machine\":%s,\"telemetry\":%s}" (Costmodel.machine_to_json m)
              telemetry_json
          | None -> telemetry_json
        in
        write_file path body;
        Printf.eprintf "telemetry snapshot written to %s\n" path)
      json_path;
    Option.iter
      (fun path ->
        write_file path (Tel.Snapshot.to_chrome_trace snap);
        Printf.eprintf "chrome trace written to %s (open in about:tracing)\n" path)
      trace_path;
    Option.iter
      (fun rules ->
        let report = Slo.evaluate rules snap in
        Format.printf "%a@?" Slo.pp_report report;
        healthy := report.Slo.healthy)
      slo_rules
  end;
  Option.iter
    (fun path ->
      write_file path (Events.to_jsonl Events.default);
      Printf.eprintf "event log written to %s (%d events, %d dropped)\n" path
        (Events.length Events.default) (Events.dropped Events.default))
    events_path;
  !healthy

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print a telemetry metrics table on stderr.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE" ~doc:"Write the telemetry JSON snapshot to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event file to $(docv) (view in about:tracing).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:"Write the structured event log to $(docv) as JSON-lines.")

let slo_arg =
  Arg.(
    value & flag
    & info [ "slo" ]
        ~doc:
          "Evaluate the built-in SLO rules (round deadlines, mailbox-load ceiling, \
           pairing-cache hit rate, zero drops) against the run and print a health report; \
           exit 2 when unhealthy.")

let trace_sample_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "trace-sample" ] ~docv:"RATE"
        ~doc:
          "Enable per-message causal tracing, sampling $(docv) of real submissions \
           (0.0-1.0). Trace contexts ride out-of-band: wire bytes are unchanged.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Size of the data-parallel domain pool used for batch onion unwrap, PKG \
           extraction and mailbox scans. 1 runs fully sequentially; 0 (the default) \
           reads the ALPENHORN_DOMAINS environment variable (itself defaulting to 1). \
           Every pool size produces byte-identical protocol output.")

let apply_domains domains =
  if domains < 0 then begin
    prerr_endline "alpenhorn: --domains must be >= 1";
    exit 2
  end;
  if domains > 0 then Parallel.set_default_size domains

(* ---- live metrics endpoint (shared by session, simulate and the
   standalone serve-metrics command) ---- *)

let expose_handler ?(labels = []) () =
  let cfg =
    Expose.config ~series:Timeseries.default ~runtime:(Runtime_stats.get_default ()) ~labels ()
  in
  fun (req : Listener.request) ->
    let r = Expose.handle cfg ~meth:req.meth ~path:req.path ~query:req.query () in
    { Listener.status = r.Expose.status; content_type = r.Expose.content_type; body = r.Expose.body }

(* Start the listener on its own domain so scrapes are served while the
   orchestrating domain is busy inside a round. *)
let start_metrics_server = function
  | None -> None
  | Some port ->
    let l =
      try Listener.create ~port (expose_handler ())
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "alpenhorn: cannot bind metrics port %d: %s\n" port (Unix.error_message e);
        exit 2
    in
    Printf.eprintf "serving metrics on http://127.0.0.1:%d/metrics (also /metrics.json /slo /series)\n%!"
      (Listener.port l);
    let d = Domain.spawn (fun () -> Listener.run l) in
    Some (l, d)

let stop_metrics_server ~hold = function
  | None -> ()
  | Some (l, d) ->
    if hold > 0.0 then begin
      Printf.eprintf "holding metrics endpoint open for %g s (Ctrl-C to abort)\n%!" hold;
      Unix.sleepf hold
    end;
    Listener.stop l;
    Domain.join d

let serve_metrics_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve-metrics" ] ~docv:"PORT"
        ~doc:
          "Serve live telemetry over HTTP on 127.0.0.1:$(docv) for the duration of the run \
           (0 picks an ephemeral port, printed on stderr). Endpoints: /metrics (Prometheus \
           text format 0.0.4), /metrics.json, /slo (200/503), /series?name=METRIC.")

let serve_hold_arg =
  Arg.(
    value & opt float 0.0
    & info [ "serve-hold" ] ~docv:"SECONDS"
        ~doc:"Keep the --serve-metrics endpoint up for $(docv) seconds after the run finishes.")

let make_tracer trace_sample =
  Option.map
    (fun rate ->
      if rate < 0.0 || rate > 1.0 then begin
        prerr_endline "alpenhorn: --trace-sample must be in [0, 1]";
        exit 2
      end;
      Trace.create ~rate Tel.default)
    trace_sample

(* ---- session ---- *)

let run_session caller callee intent seed metrics metrics_json trace events slo trace_sample
    domains serve_port serve_hold =
  apply_domains domains;
  let server = start_metrics_server serve_port in
  let tracer = make_tracer trace_sample in
  let d = Deployment.create ~config:Config.test ~seed in
  let secret_caller = ref None and secret_callee = ref None in
  let mk email on_place on_ring =
    Deployment.new_client d ~email
      ~callbacks:
        {
          Client.null_callbacks with
          Client.new_friend =
            (fun ~email ~key:_ ->
              Printf.printf "[%s] friend request from %s -> accepted\n" callee email;
              true);
          Client.call_placed =
            (fun ~email:_ ~intent:_ ~session_key -> if on_place then secret_caller := Some session_key);
          Client.incoming_call =
            (fun ~email ~intent ~session_key ->
              if on_ring then begin
                Printf.printf "[%s] incoming call from %s (intent %d)\n" callee email intent;
                secret_callee := Some session_key
              end);
        }
  in
  let a = mk caller true false and b = mk callee false true in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> Printf.printf "registered %s\n" (Client.email c)
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    [ a; b ];
  Printf.printf "\n> /addfriend %s\n" callee;
  Client.add_friend a ~email:callee ();
  ignore (Deployment.run_addfriend_round d ?tracer ());
  ignore (Deployment.run_addfriend_round d ?tracer ());
  Printf.printf "friendship established (keywheels synchronized)\n";
  Printf.printf "\n> /call %s %d\n" callee intent;
  Client.call a ~email:callee ~intent;
  let guard = ref 0 in
  while !secret_callee = None && !guard < 6 do
    incr guard;
    ignore (Deployment.run_dialing_round d ?tracer ())
  done;
  let slo_rules =
    if slo then
      (* in-process rounds are function calls: generous wall-clock bounds *)
      Some (Slo.default_rules ~addfriend_deadline:300.0 ~dialing_deadline:300.0 ())
    else None
  in
  let healthy =
    dump_telemetry ~metrics ~json_path:metrics_json ~trace_path:trace ?tracer
      ~events_path:events ~slo_rules ()
  in
  stop_metrics_server ~hold:serve_hold server;
  match (!secret_caller, !secret_callee) with
  | Some ka, Some kb when ka = kb ->
    Printf.printf "\nshared secret (paste into PANDA or your messenger):\n  %s\n" (Util.to_hex ka);
    if healthy then 0 else 2
  | _ ->
    prerr_endline "call failed";
    1

let session_cmd =
  let caller =
    Arg.(value & opt string "alice@example.org" & info [ "caller" ] ~doc:"Caller email address.")
  in
  let callee =
    Arg.(value & opt string "bob@example.org" & info [ "callee" ] ~doc:"Callee email address.")
  in
  let intent = Arg.(value & opt int 0 & info [ "intent" ] ~doc:"Application intent (0-3).") in
  let seed = Arg.(value & opt string "cli" & info [ "seed" ] ~doc:"Deterministic seed.") in
  Cmd.v
    (Cmd.info "session" ~doc:"Friend two users and place a call; print the shared secret.")
    Term.(
      const run_session $ caller $ callee $ intent $ seed $ metrics_arg $ metrics_json_arg
      $ trace_arg $ events_arg $ slo_arg $ trace_sample_arg $ domains_arg $ serve_metrics_arg
      $ serve_hold_arg)

(* ---- params ---- *)

let run_params name =
  let pr = Params.of_named name in
  let p = Field.modulus pr.Params.fp in
  Printf.printf "parameter set: %s\n" name;
  Printf.printf "field prime p: %d bits (%s...)\n" (B.numbits p)
    (String.sub (B.to_hex p) 0 16);
  Printf.printf "group order q: %d bits\n" (B.numbits pr.Params.q);
  Printf.printf "cofactor 12l:  %s\n" (B.to_string pr.Params.cofactor);
  Printf.printf "G1 point size: %d bytes compressed\n"
    (Alpenhorn_pairing.Curve.point_bytes pr.Params.fp);
  Printf.printf "curve: y^2 = x^3 + 1 over F_p (supersingular, Boneh-Franklin setting)\n";
  Params.validate pr;
  Printf.printf "validation: OK\n";
  0

let params_cmd =
  let set_arg =
    Arg.(value & pos 0 string "production" & info [] ~docv:"SET" ~doc:"\"test\" or \"production\".")
  in
  Cmd.v (Cmd.info "params" ~doc:"Inspect and validate a pairing parameter set.")
    Term.(const run_params $ set_arg)

(* ---- simulate ---- *)

let run_simulate users servers dial_minutes af_hours calibrate metrics metrics_json trace events
    slo trace_sample faults_spec fault_seed domains serve_port serve_hold record =
  apply_domains domains;
  let server = start_metrics_server serve_port in
  let tracer = make_tracer trace_sample in
  let faults =
    match (faults_spec, fault_seed) with
    | Some _, Some _ ->
      prerr_endline "alpenhorn: --faults and --fault-seed are mutually exclusive";
      exit 2
    | Some spec, None -> begin
      match Faults.parse spec with
      | Ok t -> t
      | Error e ->
        Printf.eprintf "alpenhorn: bad --faults spec: %s\n" e;
        exit 2
    end
    | None, Some seed -> Faults.generate ~seed ~rounds:1 ~n_servers:servers ()
    | None, None -> Faults.empty
  in
  let have_faults = not (Faults.is_empty faults) in
  if have_faults then
    Printf.eprintf "fault schedule (seed %s): %s\n" (Faults.seed faults) (Faults.to_string faults);
  let pr = Params.production () in
  let pc = Costmodel.protocol_costs pr in
  let m =
    if calibrate then begin
      (* measure this host's pure-OCaml primitives on the test curve (the
         production curve would take minutes); the record is dumped with the
         snapshot so the calibration is not lost. The domain pool calibrates
         the cores field from its measured batch-unwrap speedup. *)
      let m = Costmodel.measure_local ~pool:(Parallel.get ()) (Params.test ()) in
      Format.eprintf "%a@." Costmodel.pp_machine m;
      m
    end
    else Costmodel.paper_machine
  in
  let af =
    Costmodel.addfriend_round m pc ~n_users:users ~n_servers:servers ~noise_mu:4000.0
      ~active_fraction:0.05 ()
  in
  let dial =
    Costmodel.dialing_round m pc ~n_users:users ~n_servers:servers ~noise_mu:25000.0
      ~active_fraction:0.05 ~friends:1000 ~intents:10 ()
  in
  let af_bw =
    Costmodel.addfriend_bandwidth pc ~n_users:users ~n_servers:servers ~noise_mu:4000.0
      ~active_fraction:0.05 ~round_seconds:(af_hours *. 3600.0)
  in
  let dial_bw =
    Costmodel.dialing_bandwidth pc ~n_users:users ~n_servers:servers ~noise_mu:25000.0
      ~active_fraction:0.05 ~round_seconds:(dial_minutes *. 60.0)
  in
  Printf.printf "deployment: %d users, %d mixnet servers (paper-calibrated hardware)\n" users servers;
  Printf.printf "add-friend round latency: %.1f s (mailbox %.2f MB)\n" af.Costmodel.total_seconds
    (float_of_int af.Costmodel.mailbox_bytes /. 1e6);
  Printf.printf "dialing round latency:    %.1f s (filter %.2f MB)\n" dial.Costmodel.total_seconds
    (float_of_int dial.Costmodel.mailbox_bytes /. 1e6);
  Printf.printf "client bandwidth: %.2f KB/s add-friend @%.1fh + %.2f KB/s dialing @%.0fmin\n"
    (af_bw /. 1000.0) af_hours (dial_bw /. 1000.0) dial_minutes;
  Printf.printf "total: %.2f KB/s (%.1f GB/month)\n"
    ((af_bw +. dial_bw) /. 1000.0)
    ((af_bw +. dial_bw) *. 86400.0 *. 30.0 /. 1e9);
  if
    metrics || metrics_json <> None || trace <> None || events <> None || slo || tracer <> None
    || have_faults || record <> None
  then begin
    (* replay one add-friend + one dialing round on the DES engine so the
       snapshot and trace carry per-hop counters and simulated-clock spans;
       a fault schedule turns each replay into an abort/backoff/retry loop
       on the same simulated clock (DESIGN.md §10) *)
    ignore (Tel.Snapshot.take ~reset:true Tel.default);
    let af_tl =
      Round_sim.addfriend m ?tracer ~faults pc ~n_users:users ~n_servers:servers ~noise_mu:4000.0
        ~active_fraction:0.05 ~chunks:1
    in
    let dial_tl =
      Round_sim.dialing m ?tracer ~faults pc ~n_users:users ~n_servers:servers ~noise_mu:25000.0
        ~active_fraction:0.05 ~friends:1000 ~intents:10 ~chunks:1
    in
    if have_faults then
      List.iter
        (fun (phase, (tl : Round_sim.timeline)) ->
          if tl.Round_sim.completed then
            Printf.printf "%s round under faults: completed after %d attempt%s (publish at %.1f s)\n"
              phase tl.Round_sim.attempts
              (if tl.Round_sim.attempts = 1 then "" else "s")
              tl.Round_sim.publish
          else
            Printf.printf "%s round under faults: FAILED after %d attempts\n" phase
              tl.Round_sim.attempts)
        [ ("add-friend", af_tl); ("dialing", dial_tl) ];
    let slo_rules =
      if slo then
        let policy = Faults.default_policy in
        Some
          (Slo.default_rules
             ~addfriend_deadline:(af_hours *. 3600.0)
             ~dialing_deadline:(dial_minutes *. 60.0)
             (* fault bounds only bind when the schedule actually injected
                faults; a fully-failed round (streak = max_attempts) trips
                the streak rule *)
             ~max_consecutive_aborts:(float_of_int (policy.Faults.max_attempts - 1))
             ~recovery_ceiling:(Stdlib.max (af_hours *. 3600.0) (dial_minutes *. 60.0))
             ())
      else None
    in
    let healthy =
      dump_telemetry ~metrics ~json_path:metrics_json ~trace_path:trace ~machine:m ?tracer
        ~events_path:events ~slo_rules ()
    in
    Option.iter
      (fun path ->
        write_file path (Alpenhorn_telemetry.Timeseries.to_jsonl Timeseries.default);
        Printf.eprintf "time-series ring written to %s (%d samples, DES clock)\n%!" path
          (Timeseries.length Timeseries.default))
      record;
    if not healthy then begin
      stop_metrics_server ~hold:serve_hold server;
      exit 2
    end
  end;
  stop_metrics_server ~hold:serve_hold server;
  0

let simulate_cmd =
  let users = Arg.(value & opt int 1_000_000 & info [ "users" ] ~doc:"Online users.") in
  let servers = Arg.(value & opt int 3 & info [ "servers" ] ~doc:"Mixnet chain length.") in
  let dial_minutes =
    Arg.(value & opt float 5.0 & info [ "dial-minutes" ] ~doc:"Dialing round duration (minutes).")
  in
  let af_hours =
    Arg.(value & opt float 4.0 & info [ "addfriend-hours" ] ~doc:"Add-friend round duration (hours).")
  in
  let calibrate =
    Arg.(
      value & flag
      & info [ "calibrate" ]
          ~doc:"Measure this host's primitives (test curve) instead of the paper-calibrated \
                constants; the calibration record is included in the JSON snapshot.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject a deterministic fault schedule into the round replay. $(docv) is a \
             semicolon-separated list of kind@round:key=value,... entries, e.g. \
             \"crash@1:server=1;stall@1:server=0,seconds=45\". Kinds: crash, stall, latency, \
             loss, offline. Mutually exclusive with --fault-seed.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Generate a random fault schedule from $(docv) (same seed, same schedule, same \
             failure trace, forever). Mutually exclusive with --faults.")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:"Write the DES-clock time-series ring of the replayed rounds to $(docv) as \
                JSON-lines (replayable with $(b,top --replay)). Implies the round replay.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Price a deployment with the paper-calibrated cost model.")
    Term.(
      const run_simulate $ users $ servers $ dial_minutes $ af_hours $ calibrate $ metrics_arg
      $ metrics_json_arg $ trace_arg $ events_arg $ slo_arg $ trace_sample_arg $ faults
      $ fault_seed $ domains_arg $ serve_metrics_arg $ serve_hold_arg $ record)

(* ---- scale: one sharded million-user round, gated by the scale SLOs ---- *)

let run_scale users shards noise_per_mailbox scan_sample download_budget metrics metrics_json
    events slo domains =
  apply_domains domains;
  if users < 1 then begin
    prerr_endline "alpenhorn: --users must be >= 1";
    exit 2
  end;
  ignore (Tel.Snapshot.take ~reset:true Tel.default);
  let r = Scale.run ?shards ?noise_per_mailbox ~scan_sample ~clients:users () in
  Format.printf "%a@?" Scale.pp r;
  let breach = ref false in
  if not (Scale.within_budget r) then begin
    Printf.printf "FAIL: peak heap %d words exceeds the %d-word budget\n" r.Scale.peak_words
      (Scale.budget_words ~clients:users);
    breach := true
  end;
  if r.Scale.scan_hits <> r.Scale.scan_dialed then begin
    Printf.printf "FAIL: %d of %d dialed clients missed their token\n"
      (r.Scale.scan_dialed - r.Scale.scan_hits)
      r.Scale.scan_dialed;
    breach := true
  end;
  let slo_rules =
    if slo then
      Some
        (Slo.default_rules
           ~scale_bytes_per_client_ceiling:(float_of_int download_budget)
           ~scale_words_per_client_ceiling:
             (float_of_int (Scale.budget_words ~clients:users) /. float_of_int users)
           ())
    else None
  in
  let healthy =
    dump_telemetry ~metrics ~json_path:metrics_json ~trace_path:None ~events_path:events
      ~slo_rules ()
  in
  if !breach || not healthy then exit 2;
  0

let scale_cmd =
  let users =
    Arg.(value & opt int 1_000_000 & info [ "users" ] ~doc:"Clients in the round.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"S"
          ~doc:"Contiguous mailbox-range shards (default: one per ~64k clients).")
  in
  let noise =
    Arg.(
      value
      & opt (some int) None
      & info [ "noise-per-mailbox" ] ~docv:"N"
          ~doc:"Noise tokens per mailbox (default: the paper's 25000 x 3 servers).")
  in
  let scan_sample =
    Arg.(
      value & opt int 4096
      & info [ "scan-sample" ] ~docv:"N" ~doc:"Scanning clients sampled over the population.")
  in
  let download_budget =
    Arg.(
      value & opt int 1_048_576
      & info [ "download-budget" ] ~docv:"BYTES"
          ~doc:"With --slo: ceiling for the scale.bytes_per_client gauge (a client's shard \
                download).")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run one sharded synthetic dialing round at up to millions of clients (DESIGN.md \
          §15) and assert its memory and download budgets; exits 2 on a breach.")
    Term.(
      const run_scale $ users $ shards $ noise $ scan_sample $ download_budget $ metrics_arg
      $ metrics_json_arg $ events_arg $ slo_arg $ domains_arg)

(* ---- serve-metrics: a live in-process deployment behind the endpoint ---- *)

let run_serve_metrics port rounds period seed record domains =
  apply_domains domains;
  let server = start_metrics_server (Some port) in
  (* a small real deployment looping rounds so the ring keeps filling:
     every scrape of /metrics sees live counters moving *)
  let d = Deployment.create ~config:Config.test ~seed in
  let mk email = Deployment.new_client d ~email ~callbacks:Client.null_callbacks in
  let a = mk "alice@example.org" and b = mk "bob@example.org" in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    [ a; b ];
  Client.add_friend a ~email:"bob@example.org" ();
  let stop = ref false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  let i = ref 0 in
  while (not !stop) && (rounds = 0 || !i < rounds) do
    incr i;
    ignore (Deployment.run_addfriend_round d ());
    ignore (Deployment.run_dialing_round d ());
    Client.call a ~email:"bob@example.org" ~intent:(!i mod 4);
    if period > 0.0 then Unix.sleepf period
  done;
  Printf.eprintf "ran %d round pairs\n%!" !i;
  Option.iter
    (fun path ->
      write_file path (Timeseries.to_jsonl Timeseries.default);
      Printf.eprintf "time-series ring written to %s (%d samples)\n%!" path
        (Timeseries.length Timeseries.default))
    record;
  stop_metrics_server ~hold:0.0 server;
  0

let serve_metrics_cmd =
  let port =
    Arg.(value & opt int 9598 & info [ "port" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")
  in
  let rounds =
    Arg.(
      value & opt int 0
      & info [ "rounds" ] ~docv:"N" ~doc:"Stop after $(docv) round pairs (0 = until Ctrl-C).")
  in
  let period =
    Arg.(
      value & opt float 1.0
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Pause between round pairs (default 1).")
  in
  let seed = Arg.(value & opt string "serve" & info [ "seed" ] ~doc:"Deterministic seed.") in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:"On exit, write the time-series ring to $(docv) as JSON-lines (replayable with \
                $(b,top --replay)).")
  in
  Cmd.v
    (Cmd.info "serve-metrics"
       ~doc:
         "Run a continuous in-process deployment and serve its live telemetry over HTTP \
          (/metrics, /metrics.json, /slo, /series).")
    Term.(const run_serve_metrics $ port $ rounds $ period $ seed $ record $ domains_arg)

(* ---- top: live dashboard over the ring ---- *)

(* Rebuild a displayable SLO report from the /slo JSON body: only the
   rule name, value and pass bit matter to the dashboard. *)
let report_of_slo_json body =
  match Tel.Json.parse body with
  | None -> None
  | Some j -> (
    match (Tel.Json.member "healthy" j, Tel.Json.member "checks" j) with
    | Some (Tel.Json.Bool healthy), Some (Tel.Json.Arr checks) ->
      let parse c =
        match Tel.Json.member "rule" c with
        | Some (Tel.Json.Str name) ->
          let pass = match Tel.Json.member "pass" c with Some (Tel.Json.Bool b) -> b | _ -> false in
          let value =
            match Tel.Json.member "value" c with Some (Tel.Json.Num v) -> Some v | _ -> None
          in
          Some
            {
              Slo.rule =
                Slo.rule ~name ~description:"" (Slo.Counter "") Slo.Le infinity;
              value;
              pass;
            }
        | _ -> None
      in
      Some { Slo.healthy; checks = List.filter_map parse checks }
    | _ -> None)

(* Fleet table: one row per process from the collector's last snapshots. *)
let print_fleet_rows coll =
  Printf.printf "%-14s %-7s %-30s %9s %6s %9s %7s %9s\n" "INSTANCE" "ROLE" "STATUS" "RPC" "ERR"
    "P99" "SPANS" "HEAP";
  List.iter
    (fun (r : Collector.row) ->
      let status =
        if r.Collector.row_up then "up"
        else begin
          let s = Printf.sprintf "DOWN %.0fs: %s" r.Collector.row_staleness r.Collector.row_status in
          if String.length s > 30 then String.sub s 0 30 else s
        end
      in
      Printf.printf "%-14s %-7s %-30s %9s %6d %9s %7d %9s\n" r.Collector.row_name
        r.Collector.row_role status
        (Dashboard.fmt_si (float_of_int r.Collector.row_rpc_calls))
        r.Collector.row_rpc_errors
        (Dashboard.fmt_seconds r.Collector.row_rpc_p99)
        r.Collector.row_spans
        (Dashboard.fmt_si r.Collector.row_heap_words))
    (Collector.rows coll)

(* "--fleet pkg-0=7001,mixer-1=otherhost:7002": comma-separated
   [name=][host:]port scrape targets. *)
let parse_fleet_targets spec =
  let parse_item i item =
    let name, addr =
      match String.index_opt item '=' with
      | Some eq -> (String.sub item 0 eq, String.sub item (eq + 1) (String.length item - eq - 1))
      | None -> (Printf.sprintf "instance-%d" i, item)
    in
    let host, port_s =
      match String.rindex_opt addr ':' with
      | Some c -> (String.sub addr 0 c, String.sub addr (c + 1) (String.length addr - c - 1))
      | None -> ("127.0.0.1", addr)
    in
    match int_of_string_opt port_s with
    | Some port when port > 0 && name <> "" && host <> "" ->
      Collector.instance ~name (Collector.Remote { host; port })
    | _ ->
      Printf.eprintf "alpenhorn: bad --fleet target %S (want [name=][host:]port)\n" item;
      exit 2
  in
  match List.filter (fun s -> s <> "") (String.split_on_char ',' spec) with
  | [] ->
    prerr_endline "alpenhorn: --fleet needs at least one [name=][host:]port target";
    exit 2
  | items -> List.mapi parse_item items

(* One row per process, refreshed every interval: the fleet view of top. *)
let run_top_fleet spec interval frames =
  let coll =
    Collector.create
      ~fetch:(fun ~host ~port path -> Listener.fetch ~host ~port path)
      (parse_fleet_targets spec)
  in
  let rules = Collector.fleet_rules ~max_staleness:(Float.max 10.0 (interval *. 5.0)) () in
  let stop = ref false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  let i = ref 0 in
  while (not !stop) && (frames = 0 || !i < frames) do
    incr i;
    Collector.scrape coll;
    print_string Dashboard.ansi_clear;
    print_fleet_rows coll;
    Format.printf "%a@?" Slo.pp_report (Collector.evaluate coll rules);
    flush stdout;
    if (frames = 0 || !i < frames) && not !stop then Unix.sleepf interval
  done;
  0

let run_top port host interval frames window replay color fleet =
  let color = not color in
  if fleet <> "" then run_top_fleet fleet interval frames
  else
  match replay with
  | Some path ->
    (* offline: render the recorded ring in one frame *)
    let body =
      try
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error e ->
        Printf.eprintf "alpenhorn: cannot read %s: %s\n" path e;
        exit 2
    in
    (match Timeseries.of_jsonl body with
    | Error e ->
      Printf.eprintf "alpenhorn: %s: %s\n" path e;
      2
    | Ok ring ->
      let window = if window > 0.0 then window else Float.max 60.0 (Timeseries.span_seconds ring) in
      print_string (Dashboard.render ~color ~window ~ring ~slo:None ());
      0)
  | None ->
    let ring = Timeseries.create_detached ~capacity:720 () in
    let window = if window > 0.0 then window else 60.0 in
    let stop = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    let i = ref 0 and failures = ref 0 in
    while (not !stop) && (frames = 0 || !i < frames) && !failures < 5 do
      incr i;
      (match Listener.fetch ~host ~port "/metrics.json" with
      | Error e ->
        incr failures;
        Printf.eprintf "fetch http://%s:%d/metrics.json: %s\n%!" host port e
      | Ok (status, _body) when status <> 200 ->
        incr failures;
        Printf.eprintf "fetch /metrics.json: HTTP %d\n%!" status
      | Ok (_, body) -> (
        failures := 0;
        match Tel.Json.parse body with
        | None -> Printf.eprintf "fetch /metrics.json: unparseable body\n%!"
        | Some j -> (
          match Timeseries.record_json ring ~ts:(Unix.gettimeofday ()) j with
          | Ok () ->
            let slo =
              match Listener.fetch ~host ~port "/slo" with
              | Ok (_, slo_body) -> report_of_slo_json slo_body
              | Error _ -> None
            in
            print_string Dashboard.ansi_clear;
            print_string (Dashboard.render ~color ~window ~ring ~slo ());
            flush stdout
          | Error e -> Printf.eprintf "ring: %s\n%!" e)));
      if (frames = 0 || !i < frames) && not !stop then Unix.sleepf interval
    done;
    if !failures >= 5 then begin
      Printf.eprintf "alpenhorn: giving up after %d consecutive fetch failures\n" !failures;
      1
    end
    else 0

let top_cmd =
  let port =
    Arg.(
      value & opt int 9598
      & info [ "port" ] ~docv:"PORT" ~doc:"Metrics endpoint port to poll (see serve-metrics).")
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Endpoint host.") in
  let interval =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc:"Poll interval.")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N" ~doc:"Render $(docv) frames then exit (0 = until Ctrl-C).")
  in
  let window =
    Arg.(
      value & opt float 0.0
      & info [ "window" ] ~docv:"SECONDS"
          ~doc:"Query window for rates/quantiles/sparklines (0 = 60 s live, full span on replay).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Render offline from a recorded JSON-lines ring (serve-metrics --record) instead \
                of polling.")
  in
  let no_color = Arg.(value & flag & info [ "no-color" ] ~doc:"Disable ANSI colors.") in
  let fleet =
    Arg.(
      value & opt string ""
      & info [ "fleet" ] ~docv:"TARGETS"
          ~doc:
            "Fleet mode: poll several processes instead of one. $(docv) is a comma-separated \
             list of [name=][host:]port metrics endpoints (e.g. \
             \"pkg-0=9001,mixer-0=9002,mixer-1=9003\"); each frame scrapes all of them and \
             renders one row per process plus the fleet SLO report.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live ANSI dashboard over a metrics endpoint: rounds/s, unwraps/s, GC pause and heap \
          sparklines, SLO status. Also renders offline from a recorded ring, and fleet mode \
          ($(b,--fleet)) shows one row per process.")
    Term.(const run_top $ port $ host $ interval $ frames $ window $ replay $ no_color $ fleet)

(* ---- networked deployment: serve-pkg / serve-mixer / e2e-net ---- *)

(* The servers a real deployment runs as separate processes (DESIGN.md
   §13): each wraps its protocol logic (lib/remote) behind the framed RPC
   loop and prints "READY port=N" once bound, so a parent that spawned it
   with --port 0 can read the ephemeral port back. *)

let ready_line ?metrics port =
  match metrics with
  | Some m -> Printf.printf "READY port=%d metrics=%d\n%!" port m
  | None -> Printf.printf "READY port=%d\n%!" port

(* Serve the RPC loop, optionally with a telemetry endpoint on its own
   domain. [instance]/[role] become constant labels on every exported
   sample, so one fleet scrape distinguishes every process. The metrics
   port is echoed in the READY handshake (metrics=M) for the parent. *)
let run_rpc_server ~instance ~role ~handler ~metrics_port port =
  let server =
    try Rpc.Server.create_traced ~port handler
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "alpenhorn: cannot bind port %d: %s\n" port (Unix.error_message e);
      exit 2
  in
  match metrics_port with
  | None ->
    ready_line (Rpc.Server.port server);
    Rpc.Server.run server;
    0
  | Some mport ->
    let l =
      try
        Listener.create ~port:mport
          (expose_handler ~labels:[ ("instance", instance); ("role", role) ] ())
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "alpenhorn: cannot bind metrics port %d: %s\n" mport (Unix.error_message e);
        exit 2
    in
    let d = Domain.spawn (fun () -> Listener.run l) in
    ready_line ~metrics:(Listener.port l) (Rpc.Server.port server);
    Rpc.Server.run server;
    Listener.stop l;
    Domain.join d;
    0

let seed_arg = Arg.(value & opt string "e2e" & info [ "seed" ] ~doc:"Deterministic deployment seed.")

let port_arg =
  Arg.(
    value & opt int 0
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen port; 0 (the default) picks an ephemeral port, printed as READY port=N.")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Also serve the telemetry endpoints (/metrics, /metrics.json, /slo, /series) on \
           127.0.0.1:$(docv) with this process's instance/role as constant labels. 0 picks \
           an ephemeral port; the bound port is echoed in the READY line as metrics=M.")

let run_serve_pkg seed port index metrics_port =
  run_rpc_server
    ~instance:(Printf.sprintf "pkg-%d" index)
    ~role:"pkg"
    ~handler:
      (Servers.Pkg_server.handler_traced (Servers.Pkg_server.create ~config:Config.test ~seed ~index))
    ~metrics_port port

let serve_pkg_cmd =
  let index =
    Arg.(
      value & opt int 0
      & info [ "index" ] ~docv:"I"
          ~doc:"PKG index: selects the pkg-$(docv) DRBG derivation from the deployment seed.")
  in
  Cmd.v
    (Cmd.info "serve-pkg"
       ~doc:
         "Run one PKG as a framed-RPC server process (registration, commit/reveal key \
          rotation, identity-key extraction).")
    Term.(const run_serve_pkg $ seed_arg $ port_arg $ index $ metrics_port_arg)

let run_serve_mixer seed port position metrics_port =
  run_rpc_server
    ~instance:(Printf.sprintf "mixer-%d" position)
    ~role:"mixer"
    ~handler:
      (Servers.Mixer_server.handler_traced
         (Servers.Mixer_server.create ~config:Config.test ~seed ~position))
    ~metrics_port port

let serve_mixer_cmd =
  let position =
    Arg.(
      value & opt int 0
      & info [ "position" ] ~docv:"I"
          ~doc:
            "Chain position: this process serves position $(docv) of both the add-friend \
             and the dialing mixnet chains.")
  in
  Cmd.v
    (Cmd.info "serve-mixer"
       ~doc:
         "Run one mixnet chain position as a framed-RPC server process (round key \
          announcement, unwrap/noise/shuffle).")
    Term.(const run_serve_mixer $ seed_arg $ port_arg $ position $ metrics_port_arg)

(* -- e2e-net: multi-process deployment driver -- *)

type child = { pid : int; out : in_channel; port : int; metrics : int (* 0 = none *) }

let spawn_child args =
  let r, w = Unix.pipe () in
  let argv = Array.of_list (Sys.executable_name :: args) in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let out = Unix.in_channel_of_descr r in
  let rec wait_ready () =
    match input_line out with
    | line -> (
      (* the extended handshake first — sscanf happily matches the short
         form as a prefix of the long one *)
      match Scanf.sscanf_opt line "READY port=%d metrics=%d" (fun p m -> (p, m)) with
      | Some (port, metrics) -> { pid; out; port; metrics }
      | None -> (
        match Scanf.sscanf_opt line "READY port=%d" (fun p -> p) with
        | Some port -> { pid; out; port; metrics = 0 }
        | None -> wait_ready ()))
    | exception End_of_file ->
      ignore (Unix.waitpid [] pid);
      failwith (Printf.sprintf "child %s exited before READY" (String.concat " " args))
  in
  wait_ready ()

let kill_child c =
  (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ());
  try close_in c.out with Sys_error _ -> ()

let localhost port = { Net_deployment.host = "127.0.0.1"; port }

let pp_af_event = function
  | Client.Friend_request_accepted e -> "accepted:" ^ e
  | Client.Friend_request_rejected e -> "rejected:" ^ e
  | Client.Friend_request_key_mismatch e -> "key-mismatch:" ^ e
  | Client.Friend_confirmed e -> "confirmed:" ^ e

let pp_dial_event (Client.Incoming_call { peer; intent; session_key }) =
  Printf.sprintf "call:%s:%d:%s" peer intent (Util.to_hex session_key)

let pp_events evs = String.concat ", " (List.map (fun (who, ev) -> who ^ "<-" ^ ev) evs)

(* The scripted scenario both deployments run: three clients, two
   friendships, two calls. [af] and [dial] run one round of each phase and
   return (attempts, canonical event strings). *)
let run_scenario ~register ~new_client ~add_friend ~call ~af ~dial ~rounds =
  let emails = [ "alice@example.org"; "bob@example.org"; "carol@example.org" ] in
  let clients = List.map new_client emails in
  List.iter register clients;
  let a, b, c =
    match clients with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  add_friend a "bob@example.org";
  add_friend c "bob@example.org";
  let af_log = List.init rounds (fun _ -> af ()) in
  call a "bob@example.org" 1;
  call b "carol@example.org" 2;
  let dial_log = List.init rounds (fun _ -> dial ()) in
  (af_log, dial_log)

let run_e2e_net seed rounds faults_spec skip_verify scrape fleet_slo domains =
  apply_domains domains;
  if rounds < 2 then begin
    prerr_endline "alpenhorn: e2e-net needs --rounds >= 2 (request round + confirmation round)";
    exit 2
  end;
  let with_metrics = scrape || fleet_slo in
  let faults =
    match faults_spec with
    | "" | "none" -> Faults.empty
    | spec -> (
      match Faults.parse spec with
      | Ok t -> t
      | Error e ->
        Printf.eprintf "alpenhorn: bad --faults spec: %s\n" e;
        exit 2)
  in
  let config = { Config.test with Config.n_pkgs = 1 } in
  let fault_view = if Faults.is_empty faults then None else Some (Faults.deployment_view faults) in
  (* spawn the anytrust deployment: one PKG + chain_length mixers, each its
     own OS process on an ephemeral localhost port *)
  let metrics_args = if with_metrics then [ "--metrics-port"; "0" ] else [] in
  let spawn_pkg i =
    spawn_child
      ([ "serve-pkg"; "--seed"; seed; "--index"; string_of_int i; "--port"; "0" ] @ metrics_args)
  in
  let spawn_mixer i =
    spawn_child
      ([ "serve-mixer"; "--seed"; seed; "--position"; string_of_int i; "--port"; "0" ]
      @ metrics_args)
  in
  let pkg_children = Array.init config.Config.n_pkgs spawn_pkg in
  let mixer_children = Array.init config.Config.chain_length (fun i -> ref (spawn_mixer i)) in
  let all_children () =
    Array.to_list (Array.map (fun c -> c) pkg_children)
    @ Array.to_list (Array.map (fun r -> !r) mixer_children)
  in
  let cleanup () = List.iter kill_child (all_children ()) in
  Printf.printf "spawned %d mixer + %d PKG server processes (ports %s)\n%!"
    (Array.length mixer_children) (Array.length pkg_children)
    (String.concat ", "
       (List.map (fun c -> string_of_int c.port) (all_children ())));
  let finally f = Fun.protect ~finally:cleanup f in
  finally @@ fun () ->
  (* set after the deployment exists; restart closures consult it so a
     respawned mixer's fresh metrics port is scraped, not the dead one *)
  let collector = ref None in
  let repoint_collector name metrics =
    match !collector with
    | Some coll when metrics > 0 ->
      Collector.set_target coll ~name (Collector.Remote { host = "127.0.0.1"; port = metrics })
    | _ -> ()
  in
  let mixers =
    Array.mapi
      (fun i r ->
        {
          Net_deployment.ep = localhost !r.port;
          kill = (fun () -> kill_child !r);
          restart =
            (fun () ->
              r := spawn_mixer i;
              Printf.printf "mixer %d respawned (pid %d, port %d)\n%!" i !r.pid !r.port;
              repoint_collector (Printf.sprintf "mixer-%d" i) !r.metrics;
              localhost !r.port);
        })
      mixer_children
  in
  let nd =
    Net_deployment.create ~config ~seed
      ~pkgs:(Array.map (fun c -> localhost c.port) pkg_children)
      ~mixers ()
  in
  Net_deployment.set_faults nd fault_view;
  let coll =
    if not with_metrics then None
    else begin
      (* trace every round: all span ids are minted by this tracer, and
         servers replay carried identities, so merged snapshots stitch *)
      Net_deployment.set_tracer nd (Some (Trace.create Tel.default));
      let fetch ~host ~port path = Listener.fetch ~host ~port path in
      let remote (c : child) = Collector.Remote { host = "127.0.0.1"; port = c.metrics } in
      let insts =
        Collector.instance ~role:"orch" ~name:"orchestrator" (Collector.Local Tel.default)
        :: Array.to_list
             (Array.mapi
                (fun i c -> Collector.instance ~name:(Printf.sprintf "pkg-%d" i) (remote c))
                pkg_children)
        @ Array.to_list
            (Array.mapi
               (fun i r -> Collector.instance ~name:(Printf.sprintf "mixer-%d" i) (remote !r))
               mixer_children)
      in
      let c = Collector.create ~fetch insts in
      collector := Some c;
      Printf.printf "scraping %d fleet instances (metrics ports %s)\n%!" (List.length insts)
        (String.concat ", "
           (List.map (fun c -> string_of_int c.metrics) (all_children ())));
      Some c
    end
  in
  let scrape_now () = Option.iter Collector.scrape coll in
  if fault_view <> None then
    Printf.printf "fault schedule: %s\n%!" (Faults.to_string faults);
  let net_af, net_dial =
    run_scenario ~rounds
      ~new_client:(fun email -> Net_deployment.new_client nd ~email ~callbacks:Client.null_callbacks)
      ~register:(fun cl ->
        match Net_deployment.register nd cl with
        | Ok () -> ()
        | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
      ~add_friend:(fun cl email -> Client.add_friend cl ~email ())
      ~call:(fun cl email intent -> Client.call cl ~email ~intent)
      ~af:(fun () ->
        let s = Net_deployment.run_addfriend_round nd () in
        Printf.printf "af round %d over TCP: %d in, %d noise, attempts %d — %s\n%!"
          s.Deployment.af_round s.Deployment.requests_in s.Deployment.noise_added
          s.Deployment.af_attempts
          (pp_events (List.map (fun (w, e) -> (w, pp_af_event e)) s.Deployment.events));
        scrape_now ();
        ( s.Deployment.af_attempts,
          List.map (fun (w, e) -> (w, pp_af_event e)) s.Deployment.events ))
      ~dial:(fun () ->
        let s = Net_deployment.run_dialing_round nd () in
        Printf.printf "dial round %d over TCP: %d in, %d noise, attempts %d — %s\n%!"
          s.Deployment.dial_round s.Deployment.tokens_in s.Deployment.dial_noise_added
          s.Deployment.dial_attempts
          (pp_events (List.map (fun (w, e) -> (w, pp_dial_event e)) s.Deployment.calls));
        scrape_now ();
        ( s.Deployment.dial_attempts,
          List.map (fun (w, e) -> (w, pp_dial_event e)) s.Deployment.calls ))
  in
  Net_deployment.close nd;
  (* ---- fleet observability checks (--scrape / --fleet-slo) ---- *)
  let fleet_ok =
    match coll with
    | None -> true
    | Some coll ->
      let ok = ref true in
      (* staleness demo: kill a mixer outright — the next scrape must mark
         it stale (its metrics freeze, fleet.instance_up drops to 0) —
         then respawn it and watch the scrape after that recover *)
      let r0 = mixer_children.(0) in
      kill_child !r0;
      Collector.scrape coll;
      let status_of name =
        match List.find_opt (fun (n, _, _) -> n = name) (Collector.status coll) with
        | Some (_, st, _) -> st
        | None -> Collector.Never "missing"
      in
      (match status_of "mixer-0" with
      | Collector.Stale reason ->
        Printf.printf "fleet: mixer-0 went stale after kill (%s)\n%!" reason
      | _ ->
        prerr_endline "fleet: FAIL — killed mixer-0 did not go stale on the next scrape";
        ok := false);
      r0 := spawn_mixer 0;
      repoint_collector "mixer-0" !r0.metrics;
      Collector.scrape coll;
      (match status_of "mixer-0" with
      | Collector.Fresh -> Printf.printf "fleet: mixer-0 recovered after respawn\n%!"
      | _ ->
        prerr_endline "fleet: FAIL — respawned mixer-0 did not recover on the next scrape";
        ok := false);
      print_fleet_rows coll;
      if scrape then begin
        (* the tentpole proof: at least one stitched trace whose spans
           were emitted by >= 3 distinct OS processes *)
        let all = Collector.traces coll in
        let crossing = Collector.cross_process_traces ~min_instances:3 coll in
        Printf.printf "fleet: %d traces stitched, %d crossing >= 3 processes\n" (List.length all)
          (List.length crossing);
        (match crossing with
        | (id, spans) :: _ ->
          Printf.printf "  e.g. trace %d: %d spans across %s\n" id (List.length spans)
            (String.concat ", " (Collector.trace_instances spans))
        | [] ->
          prerr_endline "fleet: FAIL — no trace crosses >= 3 processes";
          ok := false)
      end;
      if fleet_slo then begin
        let report =
          Collector.evaluate coll (Collector.fleet_rules ~max_staleness:300.0 ())
        in
        Format.printf "%a@?" Slo.pp_report report;
        if not report.Slo.healthy then begin
          prerr_endline "fleet: FAIL — fleet SLO report unhealthy";
          ok := false
        end
      end;
      !ok
  in
  let net_events = net_af @ net_dial in
  let base =
  if List.for_all (fun (_, evs) -> evs = []) net_events then begin
    prerr_endline "e2e-net: FAIL — no protocol events were delivered";
    1
  end
  else if skip_verify then begin
    Printf.printf "e2e-net: PASS (%d add-friend + %d dialing rounds over TCP; verification \
                   against the in-process deployment skipped)\n"
      rounds rounds;
    0
  end
  else begin
    (* replay the identical scenario on the in-process deployment — same
       seed, same fault schedule (client RNG consumption on aborted
       attempts must match) — and demand identical protocol results *)
    let d = Deployment.create ~config ~seed in
    Deployment.set_faults d fault_view;
    let ref_af, ref_dial =
      run_scenario ~rounds
        ~new_client:(fun email -> Deployment.new_client d ~email ~callbacks:Client.null_callbacks)
        ~register:(fun cl ->
          match Deployment.register d cl with
          | Ok () -> ()
          | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
        ~add_friend:(fun cl email -> Client.add_friend cl ~email ())
        ~call:(fun cl email intent -> Client.call cl ~email ~intent)
        ~af:(fun () ->
          let s = Deployment.run_addfriend_round d () in
          ( s.Deployment.af_attempts,
            List.map (fun (w, e) -> (w, pp_af_event e)) s.Deployment.events ))
        ~dial:(fun () ->
          let s = Deployment.run_dialing_round d () in
          ( s.Deployment.dial_attempts,
            List.map (fun (w, e) -> (w, pp_dial_event e)) s.Deployment.calls ))
    in
    let ref_events = ref_af @ ref_dial in
    if net_events = ref_events then begin
      Printf.printf
        "e2e-net: PASS — %d add-friend + %d dialing rounds over TCP, protocol results \
         (events, session keys, retry counts) identical to the in-process deployment\n"
        rounds rounds;
      0
    end
    else begin
      prerr_endline "e2e-net: FAIL — networked and in-process protocol results diverge:";
      List.iteri
        (fun i ((na, nev), (ra, rev)) ->
          if (na, nev) <> (ra, rev) then
            Printf.eprintf "  round %d:\n    net (attempts %d): %s\n    ref (attempts %d): %s\n" i
              na (pp_events nev) ra (pp_events rev))
        (List.combine net_events ref_events);
      1
    end
  end
  in
  if base = 0 && not fleet_ok then 1 else base

let e2e_net_cmd =
  let rounds =
    Arg.(
      value & opt int 2
      & info [ "rounds" ] ~docv:"N"
          ~doc:"Add-friend and dialing rounds to run (>= 2; the second add-friend round \
                carries the confirmations).")
  in
  let faults =
    Arg.(
      value
      & opt string "crash@2:server=1"
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault schedule (DESIGN.md §10 grammar): crash entries SIGKILL the mixer \
             process mid-round and recovery respawns it. \"none\" disables faults.")
  in
  let skip_verify =
    Arg.(
      value & flag
      & info [ "skip-verify" ]
          ~doc:"Skip replaying the scenario on the in-process deployment for comparison.")
  in
  let scrape =
    Arg.(
      value & flag
      & info [ "scrape" ]
          ~doc:
            "Give every server process a metrics endpoint (--metrics-port 0), trace every \
             round, scrape the whole fleet after each round with the orchestrator-side \
             collector, and demand at least one stitched trace whose spans cross three or \
             more OS processes. Also runs the staleness demo: a mixer is killed after the \
             scenario, shown stale on the next scrape, then respawned and shown recovered.")
  in
  let fleet_slo =
    Arg.(
      value & flag
      & info [ "fleet-slo" ]
          ~doc:
            "Evaluate fleet-wide SLO rules (zero rpc.errors across all instances, every \
             instance up, staleness and latency ceilings) over the merged fleet snapshot \
             and print the report; implies the scraping infrastructure. Exit 1 when \
             unhealthy.")
  in
  Cmd.v
    (Cmd.info "e2e-net"
       ~doc:
         "Spawn a 3-mixer + 1-PKG anytrust deployment as separate OS processes, run \
          add-friend and dialing rounds over localhost TCP (killing and respawning a \
          mixer mid-round under the fault schedule), and verify the protocol results \
          match the in-process deployment byte for byte.")
    Term.(
      const run_e2e_net $ seed_arg $ rounds $ faults $ skip_verify $ scrape $ fleet_slo
      $ domains_arg)

let () =
  let doc = "Alpenhorn: metadata-private bootstrapping (OCaml reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "alpenhorn" ~doc)
          [
            session_cmd;
            params_cmd;
            simulate_cmd;
            scale_cmd;
            serve_metrics_cmd;
            top_cmd;
            serve_pkg_cmd;
            serve_mixer_cmd;
            e2e_net_cmd;
          ]))
