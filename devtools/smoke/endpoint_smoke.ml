(* CI endpoint smoke: serve the telemetry endpoints on an ephemeral port
   while a real deployment loops rounds on another domain, scrape
   /metrics, /metrics.json and /slo with the in-repo fetch client (no
   curl), and assert status + parseability. Run via `dune build
   @endpoint-smoke`; CI runs it at ALPENHORN_DOMAINS=1 and =4.

   Exit codes: 0 all endpoints healthy, 1 assertion failed. *)

module Tel = Alpenhorn_telemetry.Telemetry
module Expose = Alpenhorn_telemetry.Expose
module Timeseries = Alpenhorn_telemetry.Timeseries
module Runtime_stats = Alpenhorn_telemetry.Runtime_stats
module Listener = Alpenhorn_net.Listener
module Deployment = Alpenhorn_core.Deployment
module Client = Alpenhorn_core.Client
module Config = Alpenhorn_core.Config

let failed = ref false

let check name cond =
  if cond then Printf.printf "ok   %s\n%!" name
  else begin
    failed := true;
    Printf.printf "FAIL %s\n%!" name
  end

let fetch_ok ~port path =
  match Listener.fetch ~port path with
  | Ok (status, body) -> (status, body)
  | Error e ->
    failed := true;
    Printf.printf "FAIL fetch %s: %s\n%!" path e;
    (0, "")

let () =
  let cfg =
    Expose.config ~series:Timeseries.default ~runtime:(Runtime_stats.get_default ()) ()
  in
  let handler (req : Listener.request) =
    let r = Expose.handle cfg ~meth:req.meth ~path:req.path ~query:req.query () in
    { Listener.status = r.Expose.status; content_type = r.Expose.content_type; body = r.Expose.body }
  in
  let t = Listener.create ~port:0 handler in
  let port = Listener.port t in
  let server = Domain.spawn (fun () -> Listener.run t) in
  (* a short but real run: rounds complete while the scrapes happen *)
  let d = Deployment.create ~config:Config.test ~seed:"endpoint-smoke" in
  let mk email = Deployment.new_client d ~email ~callbacks:Client.null_callbacks in
  let a = mk "alice@example.org" and b = mk "bob@example.org" in
  List.iter
    (fun c ->
      match Deployment.register d c with
      | Ok () -> ()
      | Error e -> failwith (Alpenhorn_pkg.Pkg.error_to_string e))
    [ a; b ];
  Client.add_friend a ~email:"bob@example.org" ();
  for i = 1 to 3 do
    ignore (Deployment.run_addfriend_round d ());
    ignore (Deployment.run_dialing_round d ());
    Client.call a ~email:"bob@example.org" ~intent:(i mod 4)
  done;
  let status, body = fetch_ok ~port "/metrics" in
  check "/metrics answers 200" (status = 200);
  check "/metrics has TYPE comments"
    (let rec has i =
       i + 6 <= String.length body && (String.sub body i 6 = "# TYPE" || has (i + 1))
     in
     has 0);
  check "/metrics shows completed rounds"
    (let rec has i =
       i + 15 <= String.length body
       && (String.sub body i 15 = "round_completed" || has (i + 1))
     in
     has 0);
  let status, body = fetch_ok ~port "/metrics.json" in
  check "/metrics.json answers 200" (status = 200);
  check "/metrics.json is valid JSON" (Tel.Json.is_valid body);
  let status, body = fetch_ok ~port "/slo" in
  check "/slo answers 200 (healthy) or 503 (unhealthy), body JSON either way"
    ((status = 200 || status = 503) && Tel.Json.is_valid body);
  check "/slo is healthy after a clean run" (status = 200);
  let status, body = fetch_ok ~port "/series?name=round.completed" in
  check "/series answers 200 with JSON" (status = 200 && Tel.Json.is_valid body);
  Listener.stop t;
  Domain.join server;
  if !failed then exit 1;
  Printf.printf "endpoint smoke: all checks passed on port %d\n%!" port
