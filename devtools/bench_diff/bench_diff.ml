(* CI perf gate: compare two benchmark or metrics JSON snapshots and exit
   nonzero when a named series regressed by more than the threshold.

     bench_diff [--threshold PCT] [--series PATH]... BEFORE.json AFTER.json

   Exit codes: 0 no regression, 1 regression found, 2 usage/parse error. *)

module Json = Alpenhorn_telemetry.Telemetry.Json

let usage () =
  prerr_endline
    "usage: bench_diff [--threshold PCT] [--series PATH]... [--carry PATH]... BEFORE.json AFTER.json";
  exit 2

let read_file path =
  try
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s
  with Sys_error _ | End_of_file -> None

let parse_file path =
  match read_file path with
  | None ->
    if Sys.file_exists path then Printf.eprintf "bench_diff: cannot read %s\n" path
    else
      Printf.eprintf
        "bench_diff: baseline %s does not exist — transcribe the bench run's machine-readable \
         JSON line into it (see the notes field of any BENCH_*.json)\n"
        path;
    exit 2
  | Some s -> (
    match Json.parse s with
    | None ->
      Printf.eprintf "bench_diff: %s is not valid JSON\n" path;
      exit 2
    | Some doc -> doc)

let () =
  let threshold = ref 10.0 and series = ref [] and carry = ref [] and files = ref [] in
  let rec args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> threshold := t
      | _ -> usage ());
      args rest
    | "--series" :: v :: rest ->
      series := !series @ [ v ];
      args rest
    | "--carry" :: v :: rest ->
      carry := !carry @ [ v ];
      args rest
    | ("--threshold" | "--series" | "--carry") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | file :: rest ->
      files := !files @ [ file ];
      args rest
  in
  args (List.tl (Array.to_list Sys.argv));
  match !files with
  | [ before_path; after_path ] ->
    let before = parse_file before_path and after = parse_file after_path in
    let rows =
      Alpenhorn_bench_diff.Diff_engine.diff ~threshold_pct:!threshold ~series:!series
        ~carry:!carry ~before ~after ()
    in
    if rows = [] then begin
      Printf.eprintf "bench_diff: no series matched\n";
      exit 2
    end;
    Alpenhorn_bench_diff.Diff_engine.pp Format.std_formatter rows;
    let bad = Alpenhorn_bench_diff.Diff_engine.regressions rows in
    if bad = [] then begin
      Printf.printf "bench_diff: %d series, none regressed more than %g%%\n" (List.length rows)
        !threshold;
      exit 0
    end
    else begin
      Printf.printf "bench_diff: %d of %d series regressed more than %g%%\n" (List.length bad)
        (List.length rows) !threshold;
      exit 1
    end
  | _ -> usage ()
