module Json = Alpenhorn_telemetry.Telemetry.Json

type row = {
  series : string;
  before_v : float;
  after_v : float option;  (* None: series disappeared from the new snapshot *)
  pct : float;
  regressed : bool;
  carried : bool;  (* matched a --carry prefix: reported, never regresses *)
}

let str_of = function
  | Json.Str s -> s
  | Json.Num n -> Printf.sprintf "%g" n
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | Json.Arr _ | Json.Obj _ -> "?"

let label_suffix v =
  match Json.member "labels" v with
  | Some (Json.Obj []) | None -> ""
  | Some (Json.Obj kvs) ->
    "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ str_of v) kvs) ^ "}"
  | Some _ -> ""

(* Telemetry snapshots carry labeled metric entries in arrays, so the
   generic dotted-path flattening would key them by array position —
   unstable across runs that register metrics in a different order.
   Re-key those sections by name+labels instead; any other JSON document
   (e.g. BENCH_*.json) falls through to {!Json.number_leaves}. *)
let flatten doc =
  match (Json.member "counters" doc, Json.member "gauges" doc) with
  | Some (Json.Arr _), Some (Json.Arr _) ->
    let metric_rows section fields =
      match Json.member section doc with
      | Some (Json.Arr entries) ->
        List.concat_map
          (fun e ->
            match Json.member "name" e with
            | Some (Json.Str name) ->
              let key = section ^ "." ^ name ^ label_suffix e in
              List.filter_map
                (fun field ->
                  match Option.bind (Json.member field e) Json.to_num with
                  | Some v ->
                    Some ((if field = "value" then key else key ^ "." ^ field), v)
                  | None -> None)
                fields
            | _ -> [])
          entries
      | _ -> []
    in
    metric_rows "counters" [ "value" ]
    @ metric_rows "gauges" [ "value" ]
    @ metric_rows "histograms" [ "count"; "sum"; "min"; "max" ]
  | _ -> Json.number_leaves doc

let keep filters series =
  filters = []
  || List.exists
       (fun f ->
         let lf = String.length f in
         String.length series >= lf && String.sub series 0 lf = f)
       filters

(* like [keep] but an empty filter list matches nothing *)
let keep_any filters series = filters <> [] && keep filters series

(* Lower is better: a regression is [after] exceeding [before] by more
   than [threshold_pct] percent. A vanished series is reported but never
   regresses; a series new in [after] is ignored (no baseline). Series
   matching a [carry] prefix are ignored-but-carried: shown with their
   percent change for trend visibility, never regressed — runtime/GC
   numbers ride the BENCH files without arming the gate. *)
let diff ~threshold_pct ?(series = []) ?(carry = []) ~before ~after () =
  let after_leaves = flatten after in
  flatten before
  |> List.filter (fun (k, _) -> keep series k || keep_any carry k)
  |> List.map (fun (k, before_v) ->
         let carried = keep_any carry k in
         match List.assoc_opt k after_leaves with
         | None ->
           { series = k; before_v; after_v = None; pct = 0.0; regressed = false; carried }
         | Some after_v ->
           let pct =
             if before_v = 0.0 then if after_v = 0.0 then 0.0 else infinity
             else (after_v -. before_v) /. before_v *. 100.0
           in
           {
             series = k;
             before_v;
             after_v = Some after_v;
             pct;
             regressed = (not carried) && pct > threshold_pct;
             carried;
           })

let regressions rows = List.filter (fun r -> r.regressed) rows

let pp ppf rows =
  List.iter
    (fun r ->
      match r.after_v with
      | None -> Format.fprintf ppf "gone %-48s %12g -> (missing)@." r.series r.before_v
      | Some a ->
        Format.fprintf ppf "%s %-48s %12g -> %-12g %+.1f%%@."
          (if r.regressed then "FAIL" else if r.carried then "info" else "ok  ")
          r.series r.before_v a r.pct)
    rows
