(** Compare two benchmark / metrics JSON snapshots and flag regressions.

    Works on any JSON document by flattening numeric leaves to dotted
    paths ([after.pairing], [speedup.ibe_encrypt], …) — the shape of the
    checked-in [BENCH_*.json] files — and understands the telemetry
    snapshot schema ([--metrics-json] output) specially, keying metric
    entries by [section.name{labels}] instead of array position.

    All series are lower-is-better; the [bench_diff] executable wraps
    this as the CI perf gate (see README). *)

type row = {
  series : string;
  before_v : float;
  after_v : float option;  (** [None]: series disappeared from the new snapshot *)
  pct : float;  (** percent change, positive = slower *)
  regressed : bool;
  carried : bool;
      (** matched a [carry] prefix: reported for trend visibility, never
          regresses (runtime/GC numbers in BENCH files) *)
}

val flatten : Alpenhorn_telemetry.Telemetry.Json.t -> (string * float) list
(** Numeric series of a document (see above for the keying). *)

val diff :
  threshold_pct:float ->
  ?series:string list ->
  ?carry:string list ->
  before:Alpenhorn_telemetry.Telemetry.Json.t ->
  after:Alpenhorn_telemetry.Telemetry.Json.t ->
  unit ->
  row list
(** One row per numeric series of [before] (optionally restricted to
    those whose path starts with one of [series]). A series is regressed
    when [after] exceeds [before] by more than [threshold_pct] percent.
    Series whose path starts with a [carry] prefix are included in the
    report even when outside [series], but can never regress — the
    ignore-but-carry channel for runtime/GC data. *)

val regressions : row list -> row list

val pp : Format.formatter -> row list -> unit
