(* Generate (q, l) pairs for Params pregenerated sets. *)
module B = Alpenhorn_bigint.Bigint
module P = Alpenhorn_pairing
let () =
  let qbits = int_of_string Sys.argv.(1) in
  let rng = Alpenhorn_crypto.Drbg.create ~seed:("genparams-" ^ Sys.argv.(1)) in
  let t0 = Unix.gettimeofday () in
  let p = P.Params.generate rng ~qbits in
  Printf.printf "qbits=%d time=%.1fs\n" qbits (Unix.gettimeofday () -. t0);
  Printf.printf "q = 0x%s\n" (B.to_hex p.P.Params.q);
  Printf.printf "l = 0x%s\n" (B.to_hex (B.div p.P.Params.cofactor (B.of_int 12)));
  Printf.printf "p bits = %d\n" (B.numbits (P.Field.modulus p.P.Params.fp));
  P.Params.validate p;
  print_endline "validate OK";
  (* quick bilinearity smoke *)
  let fp = p.P.Params.fp and g = p.P.Params.g in
  let a = B.of_int 7 and b = B.of_int 11 in
  let e1 = P.Pairing.pair p (P.Curve.mul fp a g) (P.Curve.mul fp b g) in
  let e2 = P.Fp2.pow fp (P.Pairing.pair p g g) (B.of_int 77) in
  Printf.printf "bilinear: %b\n" (P.Fp2.equal e1 e2);
  Printf.printf "nondegenerate: %b\n" (not (P.Fp2.equal (P.Pairing.pair p g g) P.Fp2.one))
